#include "core/service.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/executor.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "core/engine_auto.hpp"
#include "core/pattern_db.hpp"
#include "core/session.hpp"

namespace crispr::core {

using common::Deadline;
using common::Error;
using common::ErrorCode;
using common::Expected;

namespace {

/**
 * The request > service-default > built-in precedence for the shared
 * execution layer: a request field still at its built-in default
 * inherits the service's value. `scanRange` is deliberately exempt —
 * it is result-affecting and owned by the request (shard coordinator).
 */
void
applyDefaultExecution(ExecutionOptions &exec,
                      const ExecutionOptions &defaults)
{
    static const ExecutionOptions builtin;
    if (exec.threads == builtin.threads)
        exec.threads = defaults.threads;
    if (exec.simdTier == builtin.simdTier)
        exec.simdTier = defaults.simdTier;
    if (exec.executor == nullptr)
        exec.executor = defaults.executor;
    if (exec.spawnThreads == builtin.spawnThreads)
        exec.spawnThreads = defaults.spawnThreads;
    if (exec.chunkSize == builtin.chunkSize)
        exec.chunkSize = defaults.chunkSize;
    if (!exec.deadline.limited())
        exec.deadline = defaults.deadline;
    if (exec.scanRetries == builtin.scanRetries)
        exec.scanRetries = defaults.scanRetries;
    if (exec.retryBackoffSeconds == builtin.retryBackoffSeconds)
        exec.retryBackoffSeconds = defaults.retryBackoffSeconds;
    if (exec.retryBackoffCapSeconds ==
        builtin.retryBackoffCapSeconds)
        exec.retryBackoffCapSeconds = defaults.retryBackoffCapSeconds;
    if (exec.trace == nullptr)
        exec.trace = defaults.trace;
    if (exec.scoreThreshold == builtin.scoreThreshold)
        exec.scoreThreshold = defaults.scoreThreshold;
    if (exec.topK == builtin.topK)
        exec.topK = defaults.topK;
    if (exec.inScanScores == builtin.inScanScores)
        exec.inScanScores = defaults.inScanScores;
}

} // namespace

SearchService::SearchService(ServiceOptions options,
                             std::shared_ptr<GenomeStore> store)
    : options_(options),
      store_(store ? std::move(store)
                   : std::make_shared<GenomeStore>()),
      breakers_(std::make_shared<CircuitBreakerBoard>(options.breaker)),
      requests_(metrics_.counter("service.requests")),
      batches_(metrics_.counter("service.batches")),
      coalesced_(metrics_.counter("service.coalesced")),
      batchSplits_(metrics_.counter("service.batch_splits")),
      expired_(metrics_.counter("service.expired")),
      rejected_(metrics_.counter("service.rejected")),
      shed_(metrics_.counter("service.shed")),
      degraded_(metrics_.counter("service.degraded")),
      pressureEnters_(metrics_.counter("service.pressure_enters")),
      pressureExits_(metrics_.counter("service.pressure_exits")),
      batchSize_(metrics_.histogram("service.batch_size")),
      estWait_(metrics_.histogram("service.est_wait_seconds")),
      queueDepthGauge_(metrics_.gauge("service.queue_depth")),
      queuedBytesGauge_(metrics_.gauge("service.queued_bytes")),
      pressureGauge_(metrics_.gauge("service.pressure"))
{
    if (!options_.databaseDir.empty()) {
        // Pre-warm: pull every persisted compiled state into the
        // shared in-memory tier before the first request, so a
        // restarted service resumes serving without recompiling.
        auto db = PatternDatabase::open(options_.databaseDir);
        if (db.ok())
            metrics_.gauge("service.db_preloaded")
                .set(static_cast<double>(db.value()->preload()));
        else
            warn("service pattern database disabled: %s",
                 db.error().message().c_str());
    }
    if (options_.batchWindowSeconds >= 0.0)
        worker_ = std::thread([this] { loop(); });
}

SearchService::~SearchService()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
    // Serve whatever is still queued so no future is ever abandoned.
    drain();
}

std::future<SearchResult>
SearchService::submit(std::vector<Guide> guides, RequestOptions options)
{
    auto promise = std::make_shared<std::promise<SearchResult>>();
    std::future<SearchResult> fut = promise->get_future();
    enqueue(std::move(guides), std::move(options),
            [promise](Expected<SearchResult> result) {
                if (result.ok())
                    promise->set_value(std::move(result).value());
                else
                    promise->set_exception(std::make_exception_ptr(
                        common::ErrorException(result.error())));
            });
    return fut;
}

std::future<Expected<SearchResult>>
SearchService::trySubmit(std::vector<Guide> guides,
                         RequestOptions options)
{
    auto promise =
        std::make_shared<std::promise<Expected<SearchResult>>>();
    std::future<Expected<SearchResult>> fut = promise->get_future();
    enqueue(std::move(guides), std::move(options),
            [promise](Expected<SearchResult> result) {
                promise->set_value(std::move(result));
            });
    return fut;
}

double
SearchService::estimateSeconds(const Pending &request) const
{
    // Predicted one-pass scan cost from the engine_auto cost model,
    // scaled by the EWMA of measured-vs-predicted batch times
    // (observeMeasuredCost). Engines outside the CPU cost model fall
    // back to the auto ranking's first choice as a proxy — the
    // estimate only has to be right in magnitude, not exactly.
    WorkloadShape shape;
    shape.guideCount = request.guides.size();
    shape.guideLength = request.guides.front().protospacer.size();
    shape.pamLength = request.config.pam.size();
    shape.maxMismatches = request.config.maxMismatches;
    shape.bothStrands = request.config.bothStrands;
    const uint32_t max_states =
        request.config.params.hscanOpts.maxDfaStates;

    EngineKind kind = request.config.engine;
    if (kind != EngineKind::HscanDfa &&
        kind != EngineKind::HscanBitParallel &&
        kind != EngineKind::Reference)
        kind = chooseAutoEngine(shape, max_states);

    const AutoCalibration cal = defaultAutoCalibration();
    double seconds = predictedNsPerSymbol(kind, shape, cal) * 1e-9 *
                     static_cast<double>(request.bytes);
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned threads =
        request.config.threads == 0
            ? hw
            : std::min<unsigned>(request.config.threads, hw);
    seconds /= static_cast<double>(threads);

    double scale;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        scale = costScale_;
    }
    return seconds * scale;
}

void
SearchService::observeMeasuredCost(double predicted, double measured)
{
    if (predicted <= 0.0 || measured <= 0.0)
        return;
    const double ratio =
        std::clamp(measured / predicted, 0.05, 20.0);
    std::lock_guard<std::mutex> lock(mutex_);
    costScale_ = std::clamp(0.7 * costScale_ + 0.3 * ratio * costScale_,
                            0.05, 20.0);
}

std::vector<SearchService::Pending>
SearchService::takeQueueLocked()
{
    std::vector<Pending> pending;
    pending.swap(queue_);
    queuedSeconds_ = 0.0;
    queuedBytes_ = 0;
    queueDepthGauge_.set(0.0);
    queuedBytesGauge_.set(0.0);
    return pending;
}

void
SearchService::updatePressureLocked()
{
    if (pressured_.load(std::memory_order_relaxed) &&
        queue_.size() <= options_.pressureLowWatermark) {
        pressured_.store(false, std::memory_order_relaxed);
        pressureGauge_.set(0.0);
        pressureExits_.inc();
        inform("service pressure cleared (queue depth %zu <= low "
               "watermark %zu)",
               queue_.size(), options_.pressureLowWatermark);
    }
}

void
SearchService::enqueue(std::vector<Guide> guides,
                       RequestOptions options, Completion complete)
{
    requests_.inc();
    if (guides.empty()) {
        complete(Error(ErrorCode::InvalidArgument,
                       "request has no guides"));
        return;
    }

    applyDefaultExecution(options.config.execution(),
                          options_.defaults);

    SharedSequence genome = std::move(options.genome);
    if (!genome) {
        // A raw genomePath is the deprecated spelling of a FASTA ref.
        GenomeRef ref = options.genomeRef;
        if (ref.empty() && !options.genomePath.empty())
            ref = GenomeRef::fasta(options.genomePath);
        if (ref.empty()) {
            complete(Error(ErrorCode::InvalidArgument,
                           "request names no genome (set genome, "
                           "genomeRef, or genomePath)"));
            return;
        }
        auto loaded = store_->tryLoad(ref,
                                      options.config.lenientFasta,
                                      options.config.deadline);
        if (!loaded.ok()) {
            complete(loaded.error());
            return;
        }
        genome = std::move(loaded).value();
    }

    Pending pending;
    pending.guides = std::move(guides);
    pending.genome = std::move(genome);
    pending.config = options.config;
    if (pending.config.databaseDir.empty())
        pending.config.databaseDir = options_.databaseDir;
    if (!pending.config.breakers)
        pending.config.breakers = breakers_;
    pending.complete = std::move(complete);
    pending.arrival = std::chrono::steady_clock::now();
    pending.bytes = pending.genome->size();
    pending.estSeconds = estimateSeconds(pending);

    // Decide admission under the lock; run completions (shed victims
    // or the rejected arrival) after releasing it, so a completion
    // callback can never deadlock back into the service.
    std::vector<Pending> evicted;
    bool reject = false;
    const char *reject_reason = "";
    {
        std::lock_guard<std::mutex> lock(mutex_);

        const double est_wait = queuedSeconds_;
        estWait_.observe(est_wait);

        // Cost-aware early rejection: a request with a real, not yet
        // expired deadline that predictably cannot finish behind the
        // current queue is refused now, before it costs anything.
        // Already-expired requests are still admitted — they complete
        // instantly as timed-out at dispatch (deadline semantics stay
        // per-request and exact).
        const double remaining =
            pending.config.deadline.remainingSeconds();
        if (options_.costAwareAdmission && std::isfinite(remaining) &&
            !pending.config.deadline.expired() &&
            est_wait + pending.estSeconds > remaining) {
            reject = true;
            reject_reason = "deadline unmeetable at current queue "
                            "depth";
        }

        const bool over_requests =
            options_.maxQueueRequests > 0 &&
            queue_.size() >= options_.maxQueueRequests;
        const bool over_bytes =
            options_.maxQueueBytes > 0 && !queue_.empty() &&
            queuedBytes_ + pending.bytes > options_.maxQueueBytes;
        if (!reject && (over_requests || over_bytes)) {
            if (options_.admissionPolicy ==
                AdmissionPolicy::RejectNew) {
                reject = true;
                reject_reason = "admission queue full";
            } else {
                // DropOldest: shed from the front until the arrival
                // fits (an arrival bigger than the whole byte budget
                // sheds everything, then queues alone).
                while (!queue_.empty() &&
                       ((options_.maxQueueRequests > 0 &&
                         queue_.size() >=
                             options_.maxQueueRequests) ||
                        (options_.maxQueueBytes > 0 &&
                         queuedBytes_ + pending.bytes >
                             options_.maxQueueBytes))) {
                    Pending victim = std::move(queue_.front());
                    queue_.erase(queue_.begin());
                    queuedSeconds_ =
                        std::max(0.0, queuedSeconds_ -
                                          victim.estSeconds);
                    queuedBytes_ -= victim.bytes;
                    shed_.inc();
                    evicted.push_back(std::move(victim));
                }
            }
        }

        if (!reject) {
            queuedSeconds_ += pending.estSeconds;
            queuedBytes_ += pending.bytes;
            queue_.push_back(std::move(pending));
            queueDepthGauge_.set(
                static_cast<double>(queue_.size()));
            queuedBytesGauge_.set(
                static_cast<double>(queuedBytes_));
            if (options_.pressureHighWatermark > 0 &&
                !pressured_.load(std::memory_order_relaxed) &&
                queue_.size() >= options_.pressureHighWatermark) {
                pressured_.store(true, std::memory_order_relaxed);
                pressureGauge_.set(1.0);
                pressureEnters_.inc();
                inform("service under pressure (queue depth %zu >= "
                       "high watermark %zu): batch window -> 0, "
                       "engine=auto pinned cheap",
                       queue_.size(),
                       options_.pressureHighWatermark);
            }
        } else {
            rejected_.inc();
        }
    }

    for (Pending &victim : evicted)
        victim.complete(
            Error(ErrorCode::Overloaded,
                  "request shed by admission control (drop-oldest)")
                .withContext("policy", "drop-oldest"));
    if (reject) {
        pending.complete(
            Error(ErrorCode::Overloaded, reject_reason)
                .withContext("policy",
                             options_.admissionPolicy ==
                                     AdmissionPolicy::RejectNew
                                 ? "reject-new"
                                 : "drop-oldest"));
        return;
    }
    cv_.notify_all();
}

size_t
SearchService::drain()
{
    std::vector<Pending> pending;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending = takeQueueLocked();
        ++executing_;
    }
    const size_t count = pending.size();
    dispatch(std::move(pending));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --executing_;
        updatePressureLocked();
    }
    idleCv_.notify_all();
    return count;
}

void
SearchService::flush()
{
    if (options_.batchWindowSeconds < 0.0) {
        // Manual mode: the caller's thread is the only dispatcher.
        drain();
        return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    flushRequested_ = true;
    cv_.notify_all();
    idleCv_.wait(lock,
                 [this] { return queue_.empty() && executing_ == 0; });
    flushRequested_ = false;
}

void
SearchService::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_)
            return; // the destructor drains the remainder
        // Hold the window open for ride-alongs, unless the batch
        // fills, a flush cuts it short, or the service is under
        // pressure (degraded mode: drain immediately, adding zero
        // batching latency to an already-backed-up queue).
        const auto due =
            queue_.front().arrival +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    options_.batchWindowSeconds));
        while (!stop_ && !flushRequested_ &&
               !pressured_.load(std::memory_order_relaxed) &&
               queue_.size() < options_.maxBatchRequests &&
               std::chrono::steady_clock::now() < due)
            cv_.wait_until(lock, due);
        if (stop_)
            return;
        std::vector<Pending> pending = takeQueueLocked();
        ++executing_;
        lock.unlock();
        dispatch(std::move(pending));
        lock.lock();
        --executing_;
        updatePressureLocked();
        idleCv_.notify_all();
    }
}

std::string
SearchService::coalescingKey(const Pending &request)
{
    std::ostringstream key;
    key << static_cast<const void *>(request.genome.get()) << '|'
        << request.guides.front().protospacer.size() << '|'
        << static_cast<int>(request.config.engine);
    for (EngineKind kind : request.config.fallbacks)
        key << ',' << static_cast<int>(kind);
    // scanRange is the one result-affecting execution field (shard
    // emit intervals): requests scanning different ranges must never
    // share a pass.
    key << '|' << request.config.scanRange.begin << '-'
        << request.config.scanRange.end;
    key << '|' << compileOptionsKey(request.config.compile());
    return key.str();
}

void
SearchService::dispatch(std::vector<Pending> pending)
{
    if (pending.empty())
        return;
    // Group by coalescing key, preserving arrival order inside each
    // group (demux relies on stable member order, and FIFO fairness is
    // what a caller expects).
    std::vector<std::pair<std::string, std::vector<Pending>>> groups;
    for (Pending &request : pending) {
        std::string key = coalescingKey(request);
        auto it = std::find_if(groups.begin(), groups.end(),
                               [&](const auto &group) {
                                   return group.first == key;
                               });
        if (it == groups.end())
            it = groups.emplace(groups.end(), std::move(key),
                                std::vector<Pending>{});
        it->second.push_back(std::move(request));
    }
    if (groups.size() == 1) {
        executeGroup(std::move(groups.front().second));
        return;
    }
    // Incompatible groups are independent merged passes: run them as
    // tasks on the process-wide pool (sharing workers with the chunk
    // fan-out inside each scan) instead of serially on the
    // dispatcher. The dispatcher helps execute pool tasks while it
    // waits, so a saturated pool still makes progress.
    common::Executor &exec = common::Executor::shared();
    std::vector<std::future<void>> futures;
    futures.reserve(groups.size());
    for (auto &group : groups) {
        auto members = std::make_shared<std::vector<Pending>>(
            std::move(group.second));
        futures.push_back(exec.submit(
            [this, members] { executeGroup(std::move(*members)); }));
    }
    for (auto &fut : futures) {
        exec.wait(fut);
        fut.get();
    }
}

void
SearchService::executeGroup(std::vector<Pending> group)
{
    // Requests already past their deadline complete immediately —
    // empty, timed out — without costing the batch a scan.
    std::vector<Pending> live;
    live.reserve(group.size());
    for (Pending &member : group) {
        if (member.config.deadline.expired()) {
            expired_.inc();
            member.complete(expiredResult(member));
        } else {
            live.push_back(std::move(member));
        }
    }
    if (live.empty())
        return;

    // Respect the merged-guide cap by slicing the group into
    // consecutive runs; each run is still one genome pass.
    std::vector<Pending> run;
    size_t run_guides = 0;
    for (Pending &member : live) {
        const size_t n = member.guides.size();
        if (!run.empty() &&
            run_guides + n > options_.maxBatchGuides) {
            executeMerged(std::move(run));
            run.clear();
            run_guides = 0;
        }
        run_guides += n;
        run.push_back(std::move(member));
    }
    if (!run.empty())
        executeMerged(std::move(run));
}

common::Deadline
SearchService::combinedDeadline(const std::vector<Pending> &members)
{
    // The batch scans under the most permissive member deadline: any
    // unlimited member makes the batch unlimited. Members that expire
    // mid-scan are flagged at demux, not enforced mid-batch.
    double max_remaining = 0.0;
    for (const Pending &member : members) {
        const double remaining =
            member.config.deadline.remainingSeconds();
        if (std::isinf(remaining))
            return Deadline();
        max_remaining = std::max(max_remaining, remaining);
    }
    return Deadline::after(max_remaining);
}

SearchResult
SearchService::expiredResult(const Pending &member)
{
    SearchResult result;
    result.run.kind = member.config.engine;
    result.run.notes = "deadline expired before batch dispatch";
    result.run.metrics["scan.bytes"] = 0.0;
    result.run.metrics["scan.events"] = 0.0;
    result.run.metrics["search.hits"] = 0.0;
    result.run.metrics["search.timed_out"] =
        member.config.deadline.timedOut() ? 1.0 : 0.0;
    result.run.metrics["search.cancelled"] =
        member.config.deadline.cancelled() ? 1.0 : 0.0;
    result.timedOut = true;
    // A ranked request stays a ranked request even when it never
    // dispatched: the (empty) listing keeps its mode flag so gathers
    // that mix expired and served shards merge consistently.
    result.rankedMode = member.config.rankedRequested();
    return result;
}

SearchResult
SearchService::demux(const SearchResult &batch, size_t offset,
                     size_t count, size_t batch_requests,
                     size_t batch_guides)
{
    const uint32_t lo = static_cast<uint32_t>(offset);
    const uint32_t hi = static_cast<uint32_t>(offset + count);

    SearchResult out;
    out.patterns.guideLength = batch.patterns.guideLength;
    out.patterns.pamLength = batch.patterns.pamLength;
    out.patterns.orientation = batch.patterns.orientation;
    out.patterns.maxMismatches = batch.patterns.maxMismatches;
    out.patterns.scoreWeights = batch.patterns.scoreWeights;

    // Slice the merged pattern set down to this member's guides,
    // re-indexing both the patterns and the events that name them.
    std::vector<int64_t> pattern_map(batch.patterns.patterns.size(),
                                     -1);
    for (size_t i = 0; i < batch.patterns.patterns.size(); ++i) {
        const Pattern &pattern = batch.patterns.patterns[i];
        if (pattern.guideIndex < lo || pattern.guideIndex >= hi)
            continue;
        pattern_map[i] =
            static_cast<int64_t>(out.patterns.patterns.size());
        Pattern local = pattern;
        local.guideIndex -= lo;
        out.patterns.patterns.push_back(std::move(local));
    }

    out.run.kind = batch.run.kind;
    out.run.timing = batch.run.timing;
    out.run.notes = batch.run.notes;
    for (const automata::ReportEvent &event : batch.run.events) {
        if (event.reportId >= pattern_map.size() ||
            pattern_map[event.reportId] < 0)
            continue;
        automata::ReportEvent local = event;
        local.reportId =
            static_cast<uint32_t>(pattern_map[event.reportId]);
        out.run.events.push_back(local);
    }

    for (const OffTargetHit &hit : batch.hits) {
        if (hit.guide < lo || hit.guide >= hi)
            continue;
        OffTargetHit local = hit;
        local.guide -= lo;
        out.hits.push_back(local);
    }

    // Batch-wide figures (scan bytes/seconds, dropped events) are
    // shared by every member; the per-request keys are re-derived.
    out.droppedEvents = batch.droppedEvents;
    out.timedOut = batch.timedOut;
    out.run.metrics = batch.run.metrics;
    out.run.metrics["search.hits"] =
        static_cast<double>(out.hits.size());
    out.run.metrics["scan.events"] =
        static_cast<double>(out.run.events.size());
    if (batch.run.timing.hostSeconds > 0.0)
        out.run.metrics["search.hits_per_sec"] =
            static_cast<double>(out.hits.size()) /
            batch.run.timing.hostSeconds;
    out.run.metrics["service.batch_requests"] =
        static_cast<double>(batch_requests);
    out.run.metrics["service.batch_guides"] =
        static_cast<double>(batch_guides);
    out.run.metrics["service.coalesced"] =
        batch_requests > 1 ? 1.0 : 0.0;
    return out;
}

void
SearchService::executeMerged(std::vector<Pending> members)
{
    batches_.inc();
    batchSize_.observe(static_cast<double>(members.size()));

    // One merged guide list; member i owns [offsets[i],
    // offsets[i] + members[i].guides.size()).
    std::vector<Guide> merged;
    std::vector<size_t> offsets;
    offsets.reserve(members.size());
    for (const Pending &member : members) {
        offsets.push_back(merged.size());
        merged.insert(merged.end(), member.guides.begin(),
                      member.guides.end());
    }

    // The batch adopts the earliest member's runtime options; only the
    // deadline is composed across members. Ranked knobs are per-member
    // result shaping, not batch execution: a member's topK must select
    // against *its* guides, not the merged set, so the batch scans
    // unranked (scores on if anyone ranks) and each member's ranked
    // listing is derived after demux.
    SearchConfig config = members.front().config;
    config.deadline = members.size() > 1
                          ? combinedDeadline(members)
                          : members.front().config.deadline;
    config.topK = 0;
    config.scoreThreshold = 0.0;
    const bool any_ranked =
        std::any_of(members.begin(), members.end(),
                    [](const Pending &member) {
                        return member.config.rankedRequested();
                    });
    if (any_ranked)
        config.inScanScores = true;

    // Degraded mode: under pressure an engine=auto batch is pinned to
    // the cost model's cheapest compile+scan choice for this genome
    // size — a queue this deep cannot afford to amortise a DFA build.
    if (config.engine == EngineKind::Auto &&
        pressured_.load(std::memory_order_relaxed)) {
        WorkloadShape shape;
        shape.guideCount = merged.size();
        shape.guideLength = merged.front().protospacer.size();
        shape.pamLength = config.pam.size();
        shape.maxMismatches = config.maxMismatches;
        shape.bothStrands = config.bothStrands;
        config.engine = cheapestViableEngine(
            shape, config.params.hscanOpts.maxDfaStates,
            members.front().genome->size());
        degraded_.inc();
    }

    const Stopwatch batch_timer;
    SearchSession session(merged, config);
    Expected<SearchResult> result =
        session.trySearch(*members.front().genome);
    observeMeasuredCost(members.front().estSeconds,
                        batch_timer.seconds());

    if (!result.ok()) {
        // The merged run failed (compile or scan, all fallbacks
        // exhausted): degrade to per-request serial execution so one
        // member's failure cannot poison its batchmates.
        batchSplits_.inc();
        for (Pending &member : members)
            executeSingle(std::move(member));
        return;
    }

    // Counted only when the merged pass actually served: a split batch
    // coalesced nothing.
    if (members.size() > 1)
        coalesced_.inc(members.size());

    const SearchResult &batch = result.value();
    for (size_t i = 0; i < members.size(); ++i) {
        SearchResult member_result =
            demux(batch, offsets[i], members[i].guides.size(),
                  members.size(), merged.size());
        if (members[i].config.deadline.expired())
            member_result.timedOut = true;
        member_result.run.metrics["search.timed_out"] =
            member_result.timedOut ? 1.0 : 0.0;
        if (members[i].config.rankedRequested()) {
            member_result.rankedMode = true;
            member_result.ranked =
                rankHits(member_result.hits,
                         members[i].config.scoreThreshold,
                         members[i].config.topK);
            member_result.run.metrics["search.ranked"] =
                static_cast<double>(member_result.ranked.size());
        }
        members[i].complete(std::move(member_result));
    }
}

void
SearchService::executeSingle(Pending member)
{
    if (member.config.deadline.expired()) {
        expired_.inc();
        member.complete(expiredResult(member));
        return;
    }
    SearchSession session(member.guides, member.config);
    Expected<SearchResult> result =
        session.trySearch(*member.genome);
    if (!result.ok()) {
        member.complete(result.error());
        return;
    }
    SearchResult single = std::move(result).value();
    single.run.metrics["service.batch_requests"] = 1.0;
    single.run.metrics["service.batch_guides"] =
        static_cast<double>(member.guides.size());
    single.run.metrics["service.coalesced"] = 0.0;
    member.complete(std::move(single));
}

ServiceHealth
SearchService::health() const
{
    ServiceHealth out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.queueDepth = queue_.size();
        out.queuedBytes = queuedBytes_;
        out.executingBatches = executing_;
        out.estWaitSeconds = queuedSeconds_;
        out.accepting =
            (options_.maxQueueRequests == 0 ||
             queue_.size() < options_.maxQueueRequests) &&
            (options_.maxQueueBytes == 0 ||
             queuedBytes_ < options_.maxQueueBytes);
    }
    out.pressured = pressured_.load(std::memory_order_relaxed);
    out.executorQueueDepth =
        common::Executor::shared().pendingCount();
    out.storeBytes = store_->bytes();
    out.storeMmapBytes = store_->mmapBytes();
    out.storeEntries = store_->entryCount();
    out.breakers = breakers_->stateNames();
    return out;
}

std::map<std::string, double>
SearchService::metricsSnapshot() const
{
    std::map<std::string, double> out = metrics_.toMap();
    store_->mergeMetricsInto(out);
    breakers_->mergeMetricsInto(out);
    // The serving view includes the execution layer it schedules on:
    // executor.tasks/steals/queue_depth/wait_seconds are process-wide.
    common::Executor::shared().mergeMetricsInto(out);
    return out;
}

} // namespace crispr::core
