#include "core/service.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/executor.hpp"
#include "common/logging.hpp"
#include "core/pattern_db.hpp"
#include "core/session.hpp"

namespace crispr::core {

using common::Deadline;
using common::Error;
using common::ErrorCode;
using common::Expected;

SearchService::SearchService(ServiceOptions options,
                             std::shared_ptr<GenomeStore> store)
    : options_(options),
      store_(store ? std::move(store)
                   : std::make_shared<GenomeStore>()),
      requests_(metrics_.counter("service.requests")),
      batches_(metrics_.counter("service.batches")),
      coalesced_(metrics_.counter("service.coalesced")),
      batchSplits_(metrics_.counter("service.batch_splits")),
      expired_(metrics_.counter("service.expired")),
      batchSize_(metrics_.histogram("service.batch_size"))
{
    if (!options_.databaseDir.empty()) {
        // Pre-warm: pull every persisted compiled state into the
        // shared in-memory tier before the first request, so a
        // restarted service resumes serving without recompiling.
        auto db = PatternDatabase::open(options_.databaseDir);
        if (db.ok())
            metrics_.gauge("service.db_preloaded")
                .set(static_cast<double>(db.value()->preload()));
        else
            warn("service pattern database disabled: %s",
                 db.error().message().c_str());
    }
    if (options_.batchWindowSeconds >= 0.0)
        worker_ = std::thread([this] { loop(); });
}

SearchService::~SearchService()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
    // Serve whatever is still queued so no future is ever abandoned.
    drain();
}

std::future<SearchResult>
SearchService::submit(std::vector<Guide> guides, RequestOptions options)
{
    auto promise = std::make_shared<std::promise<SearchResult>>();
    std::future<SearchResult> fut = promise->get_future();
    enqueue(std::move(guides), std::move(options),
            [promise](Expected<SearchResult> result) {
                if (result.ok())
                    promise->set_value(std::move(result).value());
                else
                    promise->set_exception(std::make_exception_ptr(
                        common::ErrorException(result.error())));
            });
    return fut;
}

std::future<Expected<SearchResult>>
SearchService::trySubmit(std::vector<Guide> guides,
                         RequestOptions options)
{
    auto promise =
        std::make_shared<std::promise<Expected<SearchResult>>>();
    std::future<Expected<SearchResult>> fut = promise->get_future();
    enqueue(std::move(guides), std::move(options),
            [promise](Expected<SearchResult> result) {
                promise->set_value(std::move(result));
            });
    return fut;
}

void
SearchService::enqueue(std::vector<Guide> guides,
                       RequestOptions options, Completion complete)
{
    requests_.inc();
    if (guides.empty()) {
        complete(Error(ErrorCode::InvalidArgument,
                       "request has no guides"));
        return;
    }

    SharedSequence genome = std::move(options.genome);
    if (!genome) {
        if (options.genomePath.empty()) {
            complete(Error(ErrorCode::InvalidArgument,
                           "request names no genome (set genome or "
                           "genomePath)"));
            return;
        }
        auto loaded = store_->tryLoadFile(options.genomePath,
                                          options.config.lenientFasta);
        if (!loaded.ok()) {
            complete(loaded.error());
            return;
        }
        genome = std::move(loaded).value();
    }

    Pending pending;
    pending.guides = std::move(guides);
    pending.genome = std::move(genome);
    pending.config = options.config;
    if (pending.config.databaseDir.empty())
        pending.config.databaseDir = options_.databaseDir;
    pending.complete = std::move(complete);
    pending.arrival = std::chrono::steady_clock::now();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(pending));
    }
    cv_.notify_all();
}

size_t
SearchService::drain()
{
    std::vector<Pending> pending;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending.swap(queue_);
        ++executing_;
    }
    const size_t count = pending.size();
    dispatch(std::move(pending));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --executing_;
    }
    idleCv_.notify_all();
    return count;
}

void
SearchService::flush()
{
    if (options_.batchWindowSeconds < 0.0) {
        // Manual mode: the caller's thread is the only dispatcher.
        drain();
        return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    flushRequested_ = true;
    cv_.notify_all();
    idleCv_.wait(lock,
                 [this] { return queue_.empty() && executing_ == 0; });
    flushRequested_ = false;
}

void
SearchService::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_)
            return; // the destructor drains the remainder
        // Hold the window open for ride-alongs, unless the batch fills
        // or a flush cuts it short.
        const auto due =
            queue_.front().arrival +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    options_.batchWindowSeconds));
        while (!stop_ && !flushRequested_ &&
               queue_.size() < options_.maxBatchRequests &&
               std::chrono::steady_clock::now() < due)
            cv_.wait_until(lock, due);
        if (stop_)
            return;
        std::vector<Pending> pending;
        pending.swap(queue_);
        ++executing_;
        lock.unlock();
        dispatch(std::move(pending));
        lock.lock();
        --executing_;
        idleCv_.notify_all();
    }
}

std::string
SearchService::coalescingKey(const Pending &request)
{
    std::ostringstream key;
    key << static_cast<const void *>(request.genome.get()) << '|'
        << request.guides.front().protospacer.size() << '|'
        << static_cast<int>(request.config.engine);
    for (EngineKind kind : request.config.fallbacks)
        key << ',' << static_cast<int>(kind);
    key << '|' << compileOptionsKey(request.config.compile());
    return key.str();
}

void
SearchService::dispatch(std::vector<Pending> pending)
{
    if (pending.empty())
        return;
    // Group by coalescing key, preserving arrival order inside each
    // group (demux relies on stable member order, and FIFO fairness is
    // what a caller expects).
    std::vector<std::pair<std::string, std::vector<Pending>>> groups;
    for (Pending &request : pending) {
        std::string key = coalescingKey(request);
        auto it = std::find_if(groups.begin(), groups.end(),
                               [&](const auto &group) {
                                   return group.first == key;
                               });
        if (it == groups.end())
            it = groups.emplace(groups.end(), std::move(key),
                                std::vector<Pending>{});
        it->second.push_back(std::move(request));
    }
    if (groups.size() == 1) {
        executeGroup(std::move(groups.front().second));
        return;
    }
    // Incompatible groups are independent merged passes: run them as
    // tasks on the process-wide pool (sharing workers with the chunk
    // fan-out inside each scan) instead of serially on the
    // dispatcher. The dispatcher helps execute pool tasks while it
    // waits, so a saturated pool still makes progress.
    common::Executor &exec = common::Executor::shared();
    std::vector<std::future<void>> futures;
    futures.reserve(groups.size());
    for (auto &group : groups) {
        auto members = std::make_shared<std::vector<Pending>>(
            std::move(group.second));
        futures.push_back(exec.submit(
            [this, members] { executeGroup(std::move(*members)); }));
    }
    for (auto &fut : futures) {
        exec.wait(fut);
        fut.get();
    }
}

void
SearchService::executeGroup(std::vector<Pending> group)
{
    // Requests already past their deadline complete immediately —
    // empty, timed out — without costing the batch a scan.
    std::vector<Pending> live;
    live.reserve(group.size());
    for (Pending &member : group) {
        if (member.config.deadline.expired()) {
            expired_.inc();
            member.complete(expiredResult(member));
        } else {
            live.push_back(std::move(member));
        }
    }
    if (live.empty())
        return;

    // Respect the merged-guide cap by slicing the group into
    // consecutive runs; each run is still one genome pass.
    std::vector<Pending> run;
    size_t run_guides = 0;
    for (Pending &member : live) {
        const size_t n = member.guides.size();
        if (!run.empty() &&
            run_guides + n > options_.maxBatchGuides) {
            executeMerged(std::move(run));
            run.clear();
            run_guides = 0;
        }
        run_guides += n;
        run.push_back(std::move(member));
    }
    if (!run.empty())
        executeMerged(std::move(run));
}

common::Deadline
SearchService::combinedDeadline(const std::vector<Pending> &members)
{
    // The batch scans under the most permissive member deadline: any
    // unlimited member makes the batch unlimited. Members that expire
    // mid-scan are flagged at demux, not enforced mid-batch.
    double max_remaining = 0.0;
    for (const Pending &member : members) {
        const double remaining =
            member.config.deadline.remainingSeconds();
        if (std::isinf(remaining))
            return Deadline();
        max_remaining = std::max(max_remaining, remaining);
    }
    return Deadline::after(max_remaining);
}

SearchResult
SearchService::expiredResult(const Pending &member)
{
    SearchResult result;
    result.run.kind = member.config.engine;
    result.run.notes = "deadline expired before batch dispatch";
    result.run.metrics["scan.bytes"] = 0.0;
    result.run.metrics["scan.events"] = 0.0;
    result.run.metrics["search.hits"] = 0.0;
    result.run.metrics["search.timed_out"] =
        member.config.deadline.timedOut() ? 1.0 : 0.0;
    result.run.metrics["search.cancelled"] =
        member.config.deadline.cancelled() ? 1.0 : 0.0;
    result.timedOut = true;
    return result;
}

SearchResult
SearchService::demux(const SearchResult &batch, size_t offset,
                     size_t count, size_t batch_requests,
                     size_t batch_guides)
{
    const uint32_t lo = static_cast<uint32_t>(offset);
    const uint32_t hi = static_cast<uint32_t>(offset + count);

    SearchResult out;
    out.patterns.guideLength = batch.patterns.guideLength;
    out.patterns.pamLength = batch.patterns.pamLength;
    out.patterns.orientation = batch.patterns.orientation;
    out.patterns.maxMismatches = batch.patterns.maxMismatches;

    // Slice the merged pattern set down to this member's guides,
    // re-indexing both the patterns and the events that name them.
    std::vector<int64_t> pattern_map(batch.patterns.patterns.size(),
                                     -1);
    for (size_t i = 0; i < batch.patterns.patterns.size(); ++i) {
        const Pattern &pattern = batch.patterns.patterns[i];
        if (pattern.guideIndex < lo || pattern.guideIndex >= hi)
            continue;
        pattern_map[i] =
            static_cast<int64_t>(out.patterns.patterns.size());
        Pattern local = pattern;
        local.guideIndex -= lo;
        out.patterns.patterns.push_back(std::move(local));
    }

    out.run.kind = batch.run.kind;
    out.run.timing = batch.run.timing;
    out.run.notes = batch.run.notes;
    for (const automata::ReportEvent &event : batch.run.events) {
        if (event.reportId >= pattern_map.size() ||
            pattern_map[event.reportId] < 0)
            continue;
        automata::ReportEvent local = event;
        local.reportId =
            static_cast<uint32_t>(pattern_map[event.reportId]);
        out.run.events.push_back(local);
    }

    for (const OffTargetHit &hit : batch.hits) {
        if (hit.guide < lo || hit.guide >= hi)
            continue;
        OffTargetHit local = hit;
        local.guide -= lo;
        out.hits.push_back(local);
    }

    // Batch-wide figures (scan bytes/seconds, dropped events) are
    // shared by every member; the per-request keys are re-derived.
    out.droppedEvents = batch.droppedEvents;
    out.timedOut = batch.timedOut;
    out.run.metrics = batch.run.metrics;
    out.run.metrics["search.hits"] =
        static_cast<double>(out.hits.size());
    out.run.metrics["scan.events"] =
        static_cast<double>(out.run.events.size());
    if (batch.run.timing.hostSeconds > 0.0)
        out.run.metrics["search.hits_per_sec"] =
            static_cast<double>(out.hits.size()) /
            batch.run.timing.hostSeconds;
    out.run.metrics["service.batch_requests"] =
        static_cast<double>(batch_requests);
    out.run.metrics["service.batch_guides"] =
        static_cast<double>(batch_guides);
    out.run.metrics["service.coalesced"] =
        batch_requests > 1 ? 1.0 : 0.0;
    return out;
}

void
SearchService::executeMerged(std::vector<Pending> members)
{
    batches_.inc();
    batchSize_.observe(static_cast<double>(members.size()));

    // One merged guide list; member i owns [offsets[i],
    // offsets[i] + members[i].guides.size()).
    std::vector<Guide> merged;
    std::vector<size_t> offsets;
    offsets.reserve(members.size());
    for (const Pending &member : members) {
        offsets.push_back(merged.size());
        merged.insert(merged.end(), member.guides.begin(),
                      member.guides.end());
    }

    // The batch adopts the earliest member's runtime options; only the
    // deadline is composed across members.
    SearchConfig config = members.front().config;
    config.deadline = members.size() > 1
                          ? combinedDeadline(members)
                          : members.front().config.deadline;

    SearchSession session(merged, config);
    Expected<SearchResult> result =
        session.trySearch(*members.front().genome);

    if (!result.ok()) {
        // The merged run failed (compile or scan, all fallbacks
        // exhausted): degrade to per-request serial execution so one
        // member's failure cannot poison its batchmates.
        batchSplits_.inc();
        for (Pending &member : members)
            executeSingle(std::move(member));
        return;
    }

    // Counted only when the merged pass actually served: a split batch
    // coalesced nothing.
    if (members.size() > 1)
        coalesced_.inc(members.size());

    const SearchResult &batch = result.value();
    for (size_t i = 0; i < members.size(); ++i) {
        SearchResult member_result =
            demux(batch, offsets[i], members[i].guides.size(),
                  members.size(), merged.size());
        if (members[i].config.deadline.expired())
            member_result.timedOut = true;
        member_result.run.metrics["search.timed_out"] =
            member_result.timedOut ? 1.0 : 0.0;
        members[i].complete(std::move(member_result));
    }
}

void
SearchService::executeSingle(Pending member)
{
    if (member.config.deadline.expired()) {
        expired_.inc();
        member.complete(expiredResult(member));
        return;
    }
    SearchSession session(member.guides, member.config);
    Expected<SearchResult> result =
        session.trySearch(*member.genome);
    if (!result.ok()) {
        member.complete(result.error());
        return;
    }
    SearchResult single = std::move(result).value();
    single.run.metrics["service.batch_requests"] = 1.0;
    single.run.metrics["service.batch_guides"] =
        static_cast<double>(member.guides.size());
    single.run.metrics["service.coalesced"] = 0.0;
    member.complete(std::move(single));
}

std::map<std::string, double>
SearchService::metricsSnapshot() const
{
    std::map<std::string, double> out = metrics_.toMap();
    store_->mergeMetricsInto(out);
    // The serving view includes the execution layer it schedules on:
    // executor.tasks/steals/queue_depth/wait_seconds are process-wide.
    common::Executor::shared().mergeMetricsInto(out);
    return out;
}

} // namespace crispr::core
