/**
 * @file
 * Bulge-tolerant off-target search (extension of the paper's Hamming
 * formulation): up to `maxMismatches` substitutions plus up to
 * `maxBulges` DNA/RNA bulges (genome insertions/deletions) in the
 * protospacer, PAM exact and rigid.
 *
 * Because bulged alignments have variable window lengths, hits are
 * reported by their *end* coordinate on the scanned strand (the paper's
 * automata report exactly this), not converted to fixed-width windows.
 */

#ifndef CRISPR_CORE_BULGE_HPP_
#define CRISPR_CORE_BULGE_HPP_

#include <vector>

#include "automata/edit.hpp"
#include "core/engines.hpp"

namespace crispr::core {

/** One bulge-tolerant hit. */
struct BulgeHit
{
    uint32_t guide;
    Strand strand;
    /** Forward-genome offset of the last base of the aligned window. */
    uint64_t end;

    auto operator<=>(const BulgeHit &) const = default;
};

/** Configuration of a bulge-tolerant search. */
struct BulgeConfig
{
    PamSpec pam = pamNRG();
    int maxMismatches = 3;
    int maxBulges = 1;
    bool bothStrands = true;
    /**
     * Engine. The edit automaton is a plain homogeneous NFA, so every
     * automata engine runs it: Reference, Fpga, Ap, GpuInfant2, and
     * HscanDfa (subset construction; falls back to Reference when over
     * the state budget). The bit-parallel path and the baseline tools
     * do not support bulges.
     */
    EngineKind engine = EngineKind::Reference;
    EngineParams params;
};

/** Result of a bulge-tolerant search. */
struct BulgeResult
{
    std::vector<BulgeHit> hits;
    EngineTiming timing;
    size_t nfaStates = 0;
};

/** Build the per-strand edit specs for a guide set (site order).
 *  Report id = guide * 2 + (strand == Reverse). */
std::vector<automata::EditSpec>
buildEditSpecs(const std::vector<Guide> &guides, const PamSpec &pam,
               int max_mismatches, int max_bulges, bool both_strands);

/** Run a bulge-tolerant search. */
BulgeResult bulgeSearch(const genome::Sequence &genome,
                        const std::vector<Guide> &guides,
                        const BulgeConfig &config = {});

/** Golden reference for tests/verification: the DP scan, as hits. */
std::vector<BulgeHit>
bulgeSearchGolden(const genome::Sequence &genome,
                  const std::vector<Guide> &guides,
                  const BulgeConfig &config = {});

} // namespace crispr::core

#endif // CRISPR_CORE_BULGE_HPP_
