/**
 * @file
 * GenomeStore: a keyed, ref-counted cache of decoded genome::Sequence
 * objects, so every batch and every request that names the same
 * reference scans shared immutable memory instead of re-parsing FASTA.
 *
 * Load-once semantics: concurrent getOrLoad() calls for one key share
 * a single parse — the first caller runs the loader while the racers
 * block on the same future, so a reference is never decoded twice no
 * matter how many requests land at once. Failed loads are not cached
 * (the next get retries).
 *
 * The cache is LRU-bounded by total decoded bytes (`store.bytes`).
 * Eviction drops the store's reference only: callers hold plain
 * shared_ptrs, so a sequence still in use by an in-flight scan stays
 * alive until the last scan releases it — eviction can never pull a
 * genome out from under a batch.
 *
 * Metrics (metricsSnapshot()): `store.hits`, `store.misses`,
 * `store.loads`, `store.evictions`, `store.bytes`, `store.entries`,
 * `store.deadline_exceeded`.
 */

#ifndef CRISPR_CORE_GENOME_STORE_HPP_
#define CRISPR_CORE_GENOME_STORE_HPP_

#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "genome/sequence.hpp"

namespace crispr::core {

/** Shared, immutable handle to a cached genome. */
using SharedSequence = std::shared_ptr<const genome::Sequence>;

/** A keyed, LRU-byte-bounded cache of decoded genomes. */
class GenomeStore
{
  public:
    /** Decodes one genome on a cache miss (run without the lock). */
    using Loader = std::function<common::Expected<genome::Sequence>()>;

    /** @param max_bytes total decoded bytes kept (LRU evicted). */
    explicit GenomeStore(size_t max_bytes = kDefaultMaxBytes);
    ~GenomeStore();

    GenomeStore(const GenomeStore &) = delete;
    GenomeStore &operator=(const GenomeStore &) = delete;

    /**
     * The sequence cached under `key`, or the result of running
     * `loader` to fill it. Exactly one racer runs the loader; the rest
     * wait for its result. A loader error is returned to every waiter
     * and evicted immediately, so a later call retries the load.
     *
     * Deadline-awareness: a caller whose `deadline` has already
     * expired — or expires while waiting on another caller's in-flight
     * load — returns `deadline_exceeded` promptly (counted as
     * `store.deadline_exceeded`) instead of blocking for the full
     * decode. The load itself is never abandoned: the loader-running
     * caller ignores its own deadline so racers and later requests
     * still get the cached sequence.
     */
    common::Expected<SharedSequence>
    tryGetOrLoad(const std::string &key, const Loader &loader,
                 const common::Deadline &deadline = {});

    /**
     * Load a FASTA file (key = path), concatenating its records into
     * one scan stream exactly as genome::concatenateRecords does.
     * @param lenient skip malformed records instead of failing.
     * @param deadline bounds the wait as in tryGetOrLoad().
     */
    common::Expected<SharedSequence>
    tryLoadFile(const std::string &path, bool lenient = false,
                const common::Deadline &deadline = {});

    /** Throwing wrappers (ErrorException). */
    SharedSequence getOrLoad(const std::string &key,
                             const Loader &loader);
    SharedSequence loadFile(const std::string &path,
                            bool lenient = false);

    /** Insert an already-decoded sequence (replacing `key` if held). */
    SharedSequence put(const std::string &key, genome::Sequence seq);

    /** The cached sequence, or nullptr; counts a store hit or miss. */
    SharedSequence get(const std::string &key);

    /** Drop one key / every key (callers' shared_ptrs stay valid). */
    bool erase(const std::string &key);
    void clear();

    size_t bytes() const;     //!< decoded bytes currently cached
    size_t entryCount() const;
    size_t hits() const;
    size_t misses() const;
    size_t evictions() const;
    /** Loads/waits abandoned because the caller's deadline expired. */
    size_t deadlineExceededCount() const;

    /** Snapshot of the store.* metrics. */
    std::map<std::string, double> metricsSnapshot() const;

    /** Merge the store.* metrics into an existing map. */
    void mergeMetricsInto(std::map<std::string, double> &out) const;

    static constexpr size_t kDefaultMaxBytes = size_t(8) << 30;

  private:
    using LoadResult = common::Expected<SharedSequence>;

    struct Entry
    {
        std::string key;
        /** Ready (or in-flight) load result shared by every waiter. */
        std::shared_future<LoadResult> future;
        /** Distinguishes this slot from a re-created one (erase race). */
        uint64_t id = 0;
        /** Decoded size once ready; 0 while the load is in flight. */
        size_t bytes = 0;
        bool ready = false;
    };

    /** Drop ready LRU entries until the byte budget holds. */
    void evictOverBudgetLocked();
    std::list<Entry>::iterator findLocked(const std::string &key);

    const size_t maxBytes_;

    mutable std::mutex mutex_;
    std::list<Entry> entries_; //!< front = most recently used
    size_t bytes_ = 0;         //!< sum of ready entries' bytes
    uint64_t nextId_ = 1;

    mutable common::MetricsRegistry metrics_;
    common::Counter hits_;
    common::Counter misses_;
    common::Counter loads_;
    common::Counter evictions_;
    common::Counter deadlineExceeded_;
    common::Gauge bytesGauge_;
    common::Gauge entriesGauge_;
};

} // namespace crispr::core

#endif // CRISPR_CORE_GENOME_STORE_HPP_
