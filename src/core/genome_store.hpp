/**
 * @file
 * GenomeStore: a keyed, ref-counted cache of decoded genome::Sequence
 * objects, so every batch and every request that names the same
 * reference scans shared immutable memory instead of re-parsing FASTA.
 *
 * Genome identity is a typed GenomeRef (stable id + source kind:
 * in-memory | FASTA file | packed ".2bit" file) rather than a raw
 * string key; the old string-keyed methods survive as thin deprecated
 * wrappers whose behaviour is unchanged (a string path is a FASTA ref,
 * a string key is a memory ref). Packed refs are loaded through
 * genome::PackedFile — mmap on POSIX — and the store keeps the mapping
 * handle alive for the cache entry's lifetime, so N shard workers
 * naming one packed reference share a single physical copy of the
 * packed payload (the `store.mmap_bytes` gauge) on top of the one
 * shared decoded Sequence.
 *
 * Load-once semantics: concurrent getOrLoad() calls for one key share
 * a single parse — the first caller runs the loader while the racers
 * block on the same future, so a reference is never decoded twice no
 * matter how many requests land at once. Failed loads are not cached
 * (the next get retries).
 *
 * The cache is LRU-bounded by total decoded bytes (`store.bytes`).
 * Eviction drops the store's reference only: callers hold plain
 * shared_ptrs, so a sequence still in use by an in-flight scan stays
 * alive until the last scan releases it — eviction can never pull a
 * genome out from under a batch.
 *
 * Metrics (metricsSnapshot()): `store.hits`, `store.misses`,
 * `store.loads`, `store.evictions`, `store.bytes`, `store.entries`,
 * `store.mmap_bytes`, `store.deadline_exceeded`.
 */

#ifndef CRISPR_CORE_GENOME_STORE_HPP_
#define CRISPR_CORE_GENOME_STORE_HPP_

#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "genome/packed.hpp"
#include "genome/sequence.hpp"

namespace crispr::core {

/** Shared, immutable handle to a cached genome. */
using SharedSequence = std::shared_ptr<const genome::Sequence>;

/** Where a GenomeRef's bytes come from. */
enum class GenomeSource : uint8_t
{
    Memory,     //!< an in-store sequence put() under a chosen id
    FastaFile,  //!< a FASTA path, parsed + concatenated on first load
    PackedFile, //!< a ".2bit" packed file, mmap-shared across workers
};

/**
 * Typed genome identity: a stable id plus its source kind. This is
 * the public way requests, the service, and the shard coordinator
 * name a reference (RequestOptions::genomeRef); the raw string/path
 * overloads remain as deprecated wrappers that construct one of
 * these. Two refs are the same genome iff their key()s agree —
 * memory and FASTA refs keep the legacy string key unchanged, so
 * pre-GenomeRef cache contents and call sites interoperate exactly.
 */
struct GenomeRef
{
    GenomeSource source = GenomeSource::Memory;
    /** Memory: the store key. Fasta/Packed: the file path. */
    std::string id;

    static GenomeRef
    memory(std::string key)
    {
        return GenomeRef{GenomeSource::Memory, std::move(key)};
    }
    static GenomeRef
    fasta(std::string path)
    {
        return GenomeRef{GenomeSource::FastaFile, std::move(path)};
    }
    static GenomeRef
    packed(std::string path)
    {
        return GenomeRef{GenomeSource::PackedFile, std::move(path)};
    }

    bool empty() const { return id.empty(); }

    /** The store's cache key (legacy-compatible for memory/FASTA). */
    std::string
    key() const
    {
        return source == GenomeSource::PackedFile ? "2bit:" + id : id;
    }

    bool operator==(const GenomeRef &) const = default;
};

/** A keyed, LRU-byte-bounded cache of decoded genomes. */
class GenomeStore
{
  public:
    /** Decodes one genome on a cache miss (run without the lock). */
    using Loader = std::function<common::Expected<genome::Sequence>()>;

    /** @param max_bytes total decoded bytes kept (LRU evicted). */
    explicit GenomeStore(size_t max_bytes = kDefaultMaxBytes);
    ~GenomeStore();

    GenomeStore(const GenomeStore &) = delete;
    GenomeStore &operator=(const GenomeStore &) = delete;

    /**
     * Resolve a typed ref: the cached sequence under ref.key(), or
     * the result of loading it from its source. Memory refs never
     * load — an absent memory ref is InvalidArgument (put() it
     * first). FASTA refs parse the file (`lenient` skips malformed
     * records); packed refs mmap + decode it, retaining the mapping
     * for the entry's lifetime (`store.mmap_bytes`). Load-once and
     * deadline semantics are those of tryGetOrLoad().
     */
    common::Expected<SharedSequence>
    tryLoad(const GenomeRef &ref, bool lenient = false,
            const common::Deadline &deadline = {});

    /** Throwing wrapper over tryLoad (ErrorException). */
    SharedSequence load(const GenomeRef &ref, bool lenient = false);

    /** Insert an already-decoded sequence under a typed ref. */
    SharedSequence put(const GenomeRef &ref, genome::Sequence seq);

    /** The cached sequence, or nullptr; counts a store hit or miss. */
    SharedSequence get(const GenomeRef &ref);

    /** Drop one ref (callers' shared_ptrs stay valid). */
    bool erase(const GenomeRef &ref);

    /**
     * The sequence cached under `key`, or the result of running
     * `loader` to fill it. Exactly one racer runs the loader; the rest
     * wait for its result. A loader error is returned to every waiter
     * and evicted immediately, so a later call retries the load.
     *
     * Deadline-awareness: a caller whose `deadline` has already
     * expired — or expires while waiting on another caller's in-flight
     * load — returns `deadline_exceeded` promptly (counted as
     * `store.deadline_exceeded`) instead of blocking for the full
     * decode. The load itself is never abandoned: the loader-running
     * caller ignores its own deadline so racers and later requests
     * still get the cached sequence.
     */
    common::Expected<SharedSequence>
    tryGetOrLoad(const std::string &key, const Loader &loader,
                 const common::Deadline &deadline = {});

    /**
     * Deprecated string-keyed surface (thin wrappers over the typed
     * methods; behaviour unchanged — a path is a FASTA ref, a key a
     * memory ref). Prefer the GenomeRef overloads.
     */
    common::Expected<SharedSequence>
    tryLoadFile(const std::string &path, bool lenient = false,
                const common::Deadline &deadline = {});
    SharedSequence getOrLoad(const std::string &key,
                             const Loader &loader);
    SharedSequence loadFile(const std::string &path,
                            bool lenient = false);
    SharedSequence put(const std::string &key, genome::Sequence seq);
    SharedSequence get(const std::string &key);
    bool erase(const std::string &key);

    /** Drop every entry (callers' shared_ptrs stay valid). */
    void clear();

    size_t bytes() const;     //!< decoded bytes currently cached
    /** Bytes resident via packed-file mappings (shared, not heap). */
    size_t mmapBytes() const;
    size_t entryCount() const;
    size_t hits() const;
    size_t misses() const;
    size_t evictions() const;
    /** Loads/waits abandoned because the caller's deadline expired. */
    size_t deadlineExceededCount() const;

    /** Snapshot of the store.* metrics. */
    std::map<std::string, double> metricsSnapshot() const;

    /** Merge the store.* metrics into an existing map. */
    void mergeMetricsInto(std::map<std::string, double> &out) const;

    static constexpr size_t kDefaultMaxBytes = size_t(8) << 30;

  private:
    using LoadResult = common::Expected<SharedSequence>;

    /** A loader's full product: the sequence plus, for packed refs,
     *  the mapping handle the entry must keep alive. */
    struct Loaded
    {
        genome::Sequence seq;
        std::shared_ptr<const genome::PackedFile> mapped;
    };
    using RichLoader = std::function<common::Expected<Loaded>()>;

    struct Entry
    {
        std::string key;
        /** Ready (or in-flight) load result shared by every waiter. */
        std::shared_future<LoadResult> future;
        /** Distinguishes this slot from a re-created one (erase race). */
        uint64_t id = 0;
        /** Decoded size once ready; 0 while the load is in flight. */
        size_t bytes = 0;
        bool ready = false;
        /** Packed-file mapping pinned for the entry's lifetime. */
        std::shared_ptr<const genome::PackedFile> mapped;
        size_t mmapBytes = 0;
    };

    common::Expected<SharedSequence>
    tryGetOrLoadImpl(const std::string &key, const RichLoader &loader,
                     const common::Deadline &deadline);

    /** Drop ready LRU entries until the byte budget holds. */
    void evictOverBudgetLocked();
    /** Release an entry's bookkeeping (bytes + mmap accounting). */
    void dropEntryBytesLocked(const Entry &entry);
    std::list<Entry>::iterator findLocked(const std::string &key);

    const size_t maxBytes_;

    mutable std::mutex mutex_;
    std::list<Entry> entries_; //!< front = most recently used
    size_t bytes_ = 0;         //!< sum of ready entries' bytes
    size_t mmapBytes_ = 0;     //!< sum of ready entries' mapped bytes
    uint64_t nextId_ = 1;

    mutable common::MetricsRegistry metrics_;
    common::Counter hits_;
    common::Counter misses_;
    common::Counter loads_;
    common::Counter evictions_;
    common::Counter deadlineExceeded_;
    common::Gauge bytesGauge_;
    common::Gauge entriesGauge_;
    common::Gauge mmapBytesGauge_;
};

} // namespace crispr::core

#endif // CRISPR_CORE_GENOME_STORE_HPP_
