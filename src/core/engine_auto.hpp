/**
 * @file
 * The engine=auto cost model: picks the fastest CPU scan engine for a
 * workload from its compile-time shape — guide count, guide length,
 * mismatch budget d, PAM width, strand count — the way hyperscan's
 * runtime picks an implementation per database.
 *
 * The tradeoff being modelled (DESIGN.md §11):
 *
 *  - hscan-dfa scans one dense-table transition per symbol regardless
 *    of pattern count — the fastest path — but subset construction
 *    blows up in d and pattern count and is abandoned over the state
 *    budget, so it is only ranked first when the predicted automaton
 *    fits.
 *  - hscan-bitparallel (Shift-Or) costs one word op per pattern per
 *    mismatch row (d+1 rows) per symbol: immune to state blowup,
 *    linear in guides x d.
 *  - nfa-reference interprets the union NFA directly: slowest per
 *    symbol, but compiles anything in O(states); it anchors the chain
 *    as the always-works fallback.
 *
 * The model ranks all three by predicted ns/symbol from a measured
 * calibration table and returns the full ranking, so SearchSession can
 * feed it through the existing fallback machinery: a mispredicted DFA
 * (budget exceeded at compile time) degrades to the next choice with
 * no new mechanism.
 */

#ifndef CRISPR_CORE_ENGINE_AUTO_HPP_
#define CRISPR_CORE_ENGINE_AUTO_HPP_

#include <cstddef>
#include <vector>

#include "core/engines.hpp"
#include "hscan/simd.hpp"

namespace crispr::core {

/** The compile-time shape of a workload, as the cost model sees it. */
struct WorkloadShape
{
    size_t guideCount = 0;
    size_t guideLength = 20;
    size_t pamLength = 3;
    int maxMismatches = 0;
    bool bothStrands = true;

    /** Patterns compiled: guides x strands. */
    size_t
    patternCount() const
    {
        return guideCount * (bothStrands ? 2 : 1);
    }

    size_t siteLength() const { return guideLength + pamLength; }
};

/**
 * Per-symbol cost constants, measured on this container's toolchain
 * (scripts/ci.sh keeps BENCH_service.json fresh; the constants below
 * were read off `bench_service` runs at 10/100/1000 guides, d=0..4).
 * They only need to be right in ratio, not absolutely — the ranking is
 * ordinal and compile-time fallback corrects mispredictions.
 */
struct AutoCalibration
{
    /** Dense-table DFA: one indexed load + store per symbol. */
    double dfaNsPerSymbol = 4.0;
    /**
     * Shift-Or: per pattern, per mismatch row, per 64-symbol word, at
     * the scalar kernel tier (one word op per pattern row).
     */
    double shiftOrNsPerPatternRow = 0.55;
    /**
     * Measured Shift-Or throughput multipliers for the vector kernels
     * (bench_hscan --simd-compare at d=3, 100 guides): AVX2 advances 4
     * pattern lanes per op, AVX-512 eight. Sub-linear in the lane
     * count because the row recurrence stays load/shift bound.
     */
    double shiftOrAvx2Speedup = 3.0;
    double shiftOrAvx512Speedup = 5.0;
    /**
     * The kernel tier the Shift-Or prediction assumes.
     * defaultAutoCalibration() resolves the process tier (CRISPR_SIMD
     * override, then CPUID), so engine=auto ranks with the throughput
     * the host will actually see; tests pin it for determinism.
     */
    hscan::SimdTier shiftOrTier = hscan::SimdTier::Scalar;
    /** NFA interpreter: per automaton state touched per symbol. */
    double nfaNsPerState = 1.6;
    /**
     * Subset-construction size proxy, fitted against measured union
     * Hamming DFAs at 1..64 guides, d = 0..4, site length 23 (the
     * d=0 states-per-pattern intercept, the per-mismatch growth
     * factor, and the sublinear cross-pattern sharing exponent):
     * states ~= intercept * patterns * growth^d * patterns^(share*d).
     * Compared against the DatabaseOptions::maxDfaStates budget.
     */
    double dfaStatesPerPatternRow = 30.0;
    double dfaGrowthPerMismatch = 5.55;
    double dfaSharingExponent = 0.25;
    /**
     * Subset construction + dense-table fill, per produced DFA state.
     * Only consulted by cheapestViableEngine(): under overload the
     * compile cost matters because it is paid before the first byte is
     * scanned, so a small genome should not wait on a big DFA build.
     */
    double dfaCompileNsPerState = 2500.0;
};

/** The measured defaults above. */
AutoCalibration defaultAutoCalibration();

/** Predicted scan cost in ns/symbol; Dfa/BitParallel/Reference only. */
double predictedNsPerSymbol(EngineKind kind, const WorkloadShape &shape,
                            const AutoCalibration &cal);

/** Predicted subset-construction size for the DFA path. */
double predictedDfaStates(const WorkloadShape &shape,
                          const AutoCalibration &cal);

/**
 * The full cost-model ranking for a workload, fastest predicted
 * engine first: always all of {HscanDfa, HscanBitParallel, Reference},
 * with a DFA predicted over `max_dfa_states` demoted below
 * BitParallel (it would burn a compile attempt first otherwise).
 */
std::vector<EngineKind>
autoEngineRanking(const WorkloadShape &shape, uint32_t max_dfa_states,
                  const AutoCalibration &cal = defaultAutoCalibration());

/** The ranking's first choice (what `session.engine_auto.*` counts). */
EngineKind
chooseAutoEngine(const WorkloadShape &shape, uint32_t max_dfa_states,
                 const AutoCalibration &cal = defaultAutoCalibration());

/**
 * The cheapest *viable* engine for a one-shot scan of `genomeBytes`,
 * minimising predicted compile + scan cost instead of steady-state
 * ns/symbol. This is the degraded choice SearchService pins
 * engine=auto to under queue pressure: amortising a DFA build over a
 * deep queue is exactly what an overloaded server cannot afford.
 */
EngineKind
cheapestViableEngine(const WorkloadShape &shape, uint32_t max_dfa_states,
                     size_t genomeBytes,
                     const AutoCalibration &cal = defaultAutoCalibration());

} // namespace crispr::core

#endif // CRISPR_CORE_ENGINE_AUTO_HPP_
