#include "core/engine_auto.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace crispr::core {

AutoCalibration
defaultAutoCalibration()
{
    AutoCalibration cal;
    cal.shiftOrTier = hscan::resolveSimdTier();
    return cal;
}

namespace {

/** Shift-Or throughput multiplier for the calibration's tier. */
double
shiftOrTierSpeedup(const AutoCalibration &cal)
{
    switch (cal.shiftOrTier) {
      case hscan::SimdTier::Avx2:
        return cal.shiftOrAvx2Speedup;
      case hscan::SimdTier::Avx512:
        return cal.shiftOrAvx512Speedup;
      default:
        return 1.0;
    }
}

} // namespace

double
predictedDfaStates(const WorkloadShape &shape,
                   const AutoCalibration &cal)
{
    // Subset construction over the union Hamming NFA, fitted against
    // measured DFAs (see AutoCalibration): linear in patterns at d=0,
    // a ~5.5x growth factor per mismatch level, and a mild
    // patterns^(0.25*d) term for the cross-pattern sharing that
    // degrades as d grows. Deliberately a proxy, not a bound —
    // compile-time fallback catches underestimates.
    const double patterns = static_cast<double>(shape.patternCount());
    const double d = static_cast<double>(shape.maxMismatches);
    return cal.dfaStatesPerPatternRow * patterns *
           std::pow(cal.dfaGrowthPerMismatch, d) *
           std::pow(patterns, cal.dfaSharingExponent * d) *
           static_cast<double>(shape.siteLength()) / 23.0;
}

double
predictedNsPerSymbol(EngineKind kind, const WorkloadShape &shape,
                     const AutoCalibration &cal)
{
    const double patterns = static_cast<double>(shape.patternCount());
    const double rows = static_cast<double>(shape.maxMismatches + 1);
    const double words =
        static_cast<double>((shape.siteLength() + 63) / 64);
    switch (kind) {
      case EngineKind::HscanDfa:
        return cal.dfaNsPerSymbol;
      case EngineKind::HscanBitParallel:
        return cal.shiftOrNsPerPatternRow * patterns * rows * words /
               shiftOrTierSpeedup(cal);
      case EngineKind::Reference:
        // Active-set interpretation: cost tracks the union automaton
        // size (patterns x rows x site positions).
        return cal.nfaNsPerState * patterns * rows *
               static_cast<double>(shape.siteLength()) / 8.0;
      default:
        fatal("engine %d is outside the auto cost model",
              static_cast<int>(kind));
    }
}

std::vector<EngineKind>
autoEngineRanking(const WorkloadShape &shape, uint32_t max_dfa_states,
                  const AutoCalibration &cal)
{
    struct Entry
    {
        EngineKind kind;
        double cost;
        bool viable;
    };
    const bool dfa_fits =
        predictedDfaStates(shape, cal) <=
        static_cast<double>(max_dfa_states);
    std::vector<Entry> entries{
        {EngineKind::HscanDfa,
         predictedNsPerSymbol(EngineKind::HscanDfa, shape, cal),
         dfa_fits},
        {EngineKind::HscanBitParallel,
         predictedNsPerSymbol(EngineKind::HscanBitParallel, shape, cal),
         true},
        {EngineKind::Reference,
         predictedNsPerSymbol(EngineKind::Reference, shape, cal),
         true},
    };
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry &a, const Entry &b) {
                         if (a.viable != b.viable)
                             return a.viable;
                         return a.cost < b.cost;
                     });
    std::vector<EngineKind> ranking;
    ranking.reserve(entries.size());
    for (const Entry &e : entries)
        ranking.push_back(e.kind);
    return ranking;
}

EngineKind
chooseAutoEngine(const WorkloadShape &shape, uint32_t max_dfa_states,
                 const AutoCalibration &cal)
{
    return autoEngineRanking(shape, max_dfa_states, cal).front();
}

EngineKind
cheapestViableEngine(const WorkloadShape &shape,
                     uint32_t max_dfa_states, size_t genomeBytes,
                     const AutoCalibration &cal)
{
    const double bytes = static_cast<double>(genomeBytes);
    const bool dfa_fits = predictedDfaStates(shape, cal) <=
                          static_cast<double>(max_dfa_states);
    EngineKind best = EngineKind::Reference;
    double best_cost =
        predictedNsPerSymbol(EngineKind::Reference, shape, cal) * bytes;
    const double bitparallel_cost =
        predictedNsPerSymbol(EngineKind::HscanBitParallel, shape, cal) *
        bytes;
    if (bitparallel_cost < best_cost) {
        best = EngineKind::HscanBitParallel;
        best_cost = bitparallel_cost;
    }
    if (dfa_fits) {
        const double dfa_cost =
            predictedNsPerSymbol(EngineKind::HscanDfa, shape, cal) *
                bytes +
            predictedDfaStates(shape, cal) * cal.dfaCompileNsPerState;
        if (dfa_cost < best_cost)
            best = EngineKind::HscanDfa;
    }
    return best;
}

} // namespace crispr::core
