/**
 * @file
 * Result presentation: CasOFFinder-style hit listings, per-guide
 * summaries, and CSV output for the experiment harnesses.
 */

#ifndef CRISPR_CORE_REPORT_HPP_
#define CRISPR_CORE_REPORT_HPP_

#include <iosfwd>
#include <string>

#include "core/search.hpp"
#include "genome/record_map.hpp"

namespace crispr::core {

/**
 * Print one line per hit:
 *   guide-name  start  strand  mismatches  aligned-site
 * (mismatching positions in lower case, the CasOFFinder convention).
 * With a RecordMap, positions print as record:offset instead of the
 * global stream offset.
 */
void printHits(std::ostream &out, const genome::Sequence &genome,
               const std::vector<Guide> &guides,
               const SearchResult &result, size_t max_lines = SIZE_MAX,
               const genome::RecordMap *record_map = nullptr);

/** Per-guide hit counts broken down by mismatch count. */
void printSummary(std::ostream &out, const std::vector<Guide> &guides,
                  const SearchResult &result);

/** Timing/metrics one-liner for an engine run. */
std::string timingLine(const EngineRun &run);

/** Hits as CSV (guide,start,strand,mismatches,site). */
void writeHitsCsv(std::ostream &out, const genome::Sequence &genome,
                  const std::vector<Guide> &guides,
                  const SearchResult &result);

} // namespace crispr::core

#endif // CRISPR_CORE_REPORT_HPP_
