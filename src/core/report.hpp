/**
 * @file
 * Result presentation: CasOFFinder-style hit listings, per-guide
 * summaries, and CSV output for the experiment harnesses.
 */

#ifndef CRISPR_CORE_REPORT_HPP_
#define CRISPR_CORE_REPORT_HPP_

#include <iosfwd>
#include <string>

#include "core/search.hpp"
#include "genome/record_map.hpp"

namespace crispr::core {

/**
 * Print one line per hit:
 *   guide-name  start  strand  mismatches  aligned-site
 * (mismatching positions in lower case, the CasOFFinder convention).
 * With a RecordMap, positions print as record:offset instead of the
 * global stream offset.
 */
void printHits(std::ostream &out, const genome::Sequence &genome,
               const std::vector<Guide> &guides,
               const SearchResult &result, size_t max_lines = SIZE_MAX,
               const genome::RecordMap *record_map = nullptr);

/** Per-guide hit counts broken down by mismatch count. */
void printSummary(std::ostream &out, const std::vector<Guide> &guides,
                  const SearchResult &result);

/** Timing/metrics one-liner for an engine run. */
std::string timingLine(const EngineRun &run);

/** Hits as CSV (guide,start,strand,mismatches,site). */
void writeHitsCsv(std::ostream &out, const genome::Sequence &genome,
                  const std::vector<Guide> &guides,
                  const SearchResult &result);

/**
 * Print the ranked report (result.ranked, penalty descending), one
 * line per site:
 *   rank  guide-name  start  strand  mismatches  penalty  aligned-site
 * Requires a result searched in ranked mode (ExecutionOptions::topK /
 * scoreThreshold); prints a note when the result carries no ranking.
 */
void printRanked(std::ostream &out, const genome::Sequence &genome,
                 const std::vector<Guide> &guides,
                 const SearchResult &result,
                 const genome::RecordMap *record_map = nullptr);

/**
 * Ranked report as CSV
 * (rank,guide,start,strand,mismatches,penalty,guide_specificity,site),
 * where guide_specificity is the owning guide's aggregate specificity
 * over the FULL hit list (scoreGuidesFromHits) — the ranked truncation
 * shapes the listing, never the per-guide score.
 */
void writeRankedCsv(std::ostream &out, const genome::Sequence &genome,
                    const std::vector<Guide> &guides,
                    const SearchResult &result);

} // namespace crispr::core

#endif // CRISPR_CORE_REPORT_HPP_
