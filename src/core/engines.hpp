/**
 * @file
 * Engine kinds, tunables and run records, plus the legacy free-function
 * surface (engineName / allEngines / requiredOrientation / runEngine).
 * The adapters themselves live in src/core/engines/ — one translation
 * unit per platform, each registering with core::EngineRegistry — and
 * the free functions here are thin wrappers over that registry. New
 * code should prefer core::Engine / core::SearchSession (engine.hpp,
 * session.hpp), which compile a pattern set once and reuse it.
 */

#ifndef CRISPR_CORE_ENGINES_HPP_
#define CRISPR_CORE_ENGINES_HPP_

#include <map>
#include <string>
#include <vector>

#include "ap/capacity.hpp"
#include "ap/simulator.hpp"
#include "automata/interp.hpp"
#include "baselines/casoffinder.hpp"
#include "baselines/casot.hpp"
#include "core/compile.hpp"
#include "fpga/resource.hpp"
#include "genome/sequence.hpp"
#include "gpu/infant2.hpp"
#include "hscan/database.hpp"

namespace crispr::core {

/** Every engine/tool the library can run a search on. */
enum class EngineKind
{
    /**
     * Not an adapter: a cost-model selector that SearchSession expands
     * into a ranked chain of CPU engines (hscan-dfa / hscan-bitparallel
     * / nfa-reference) per workload — see core/engine_auto.hpp. The
     * recommended production engine.
     */
    Auto,
    Brute,            //!< golden O(n*L) verifier
    Reference,        //!< homogeneous-NFA interpreter
    HscanAuto,        //!< HScan, DFA if it fits, else bit-parallel
    HscanDfa,         //!< HScan, forced DFA path
    HscanBitParallel, //!< HScan, forced bit-parallel path
    HscanPrefilter,   //!< HScan, PAM-anchored prefilter + confirm
    GpuInfant2,       //!< iNFAnt2 functional sim + SIMT timing model
    Fpga,             //!< spatial fabric sim + resource/clock model
    Ap,               //!< AP, mismatch-matrix design (STEs only)
    ApCounter,        //!< AP, counter design (requires PamFirst set)
    CasOffinder,      //!< baseline tool (GPU device model)
    CasOt,            //!< baseline tool, direct mode (measured CPU)
    CasOtIndexed,     //!< baseline tool, seed-index mode
};

/** Printable engine name. */
const char *engineName(EngineKind kind);

/** All engines, in presentation order. */
std::vector<EngineKind> allEngines();

/** The pattern-set orientation an engine requires. */
Orientation requiredOrientation(EngineKind kind);

/** Per-engine tunables (defaults reproduce the paper's setups). */
struct EngineParams
{
    hscan::DatabaseOptions hscanOpts;
    gpu::SimtModel gpuModel;
    size_t gpuChunk = 1 << 20;
    fpga::FpgaDeviceSpec fpgaSpec;
    ap::ApDeviceSpec apSpec;
    ap::ApSimConfig apSimConfig;
    baselines::CasOtConfig casotConfig;
    baselines::GpuDeviceModel casoffinderModel;

    /**
     * Full cycle simulation limit for the spatial engines: genomes
     * larger than this use the analytic timing model with events from
     * the (functionally equivalent, verified) fast CPU path.
     */
    uint64_t fullSimSymbolLimit = 8ull << 20;
};

/** Timing record of one engine run. */
struct EngineTiming
{
    double compileSeconds = 0.0;   //!< measured pattern/db compile time
    double hostSeconds = 0.0;      //!< measured host execution time
    double modelKernelSeconds = 0.0; //!< modelled device kernel time
    double modelTotalSeconds = 0.0;  //!< modelled device end-to-end time

    /**
     * The engine's comparable execution time: modelled device time for
     * device engines, measured host time for CPU engines.
     */
    double kernelSeconds = 0.0;
    double totalSeconds = 0.0;
};

/** Result of one engine run. */
struct EngineRun
{
    EngineKind kind;
    std::vector<automata::ReportEvent> events; //!< normalised
    EngineTiming timing;
    std::map<std::string, double> metrics; //!< engine-specific counters
    std::string notes;
};

/**
 * Run one engine over a genome: compile-and-scan in one shot via the
 * engine registry. The pattern set's orientation must be
 * requiredOrientation(kind) (FatalError otherwise). Prefer
 * SearchSession when scanning more than once — this recompiles the
 * pattern set on every call.
 */
EngineRun runEngine(EngineKind kind, const genome::Sequence &genome,
                    const PatternSet &set, const EngineParams &params = {});

} // namespace crispr::core

#endif // CRISPR_CORE_ENGINES_HPP_
