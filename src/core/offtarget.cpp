#include "core/offtarget.hpp"

#include <algorithm>
#include <cctype>

#include "common/logging.hpp"
#include "baselines/brute.hpp"

namespace crispr::core {

std::vector<OffTargetHit>
hitsFromEvents(const genome::Sequence &genome, const PatternSet &set,
               const std::vector<automata::ReportEvent> &events,
               bool drop_unverified, size_t *dropped)
{
    if (dropped)
        *dropped = 0;
    std::vector<OffTargetHit> hits;
    hits.reserve(events.size());
    const size_t len = set.siteLength();
    for (const automata::ReportEvent &ev : events) {
        if (ev.reportId >= set.patterns.size())
            panic("event with unknown pattern id %u", ev.reportId);
        const Pattern &p = set.patterns[ev.reportId];
        CRISPR_ASSERT(p.spec.masks.size() == len);
        uint64_t start;
        if (!p.reversedStream) {
            CRISPR_ASSERT(ev.end + 1 >= len);
            start = ev.end + 1 - len;
        } else {
            CRISPR_ASSERT(ev.end < genome.size());
            start = genome.size() - 1 - ev.end;
        }
        const automata::HammingSpec fwd = set.forwardSpec(ev.reportId);
        const int mm = baselines::windowMismatches(genome, start, fwd);
        if (mm < 0) {
            if (drop_unverified) {
                if (dropped)
                    ++*dropped;
                continue;
            }
            panic("engine reported a site at %llu that fails "
                  "re-verification",
                  static_cast<unsigned long long>(start));
        }
        hits.push_back(OffTargetHit{p.guideIndex, p.strand, start, mm});
    }
    std::sort(hits.begin(), hits.end(),
              [](const OffTargetHit &a, const OffTargetHit &b) {
                  if (a.guide != b.guide)
                      return a.guide < b.guide;
                  if (a.start != b.start)
                      return a.start < b.start;
                  return a.strand < b.strand;
              });
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
    return hits;
}

std::string
hitSiteString(const genome::Sequence &genome, const PatternSet &set,
              const OffTargetHit &hit)
{
    genome::Sequence window = genome.slice(hit.start, set.siteLength());
    if (hit.strand == Strand::Reverse)
        window = window.reverseComplement();
    return window.str();
}

std::string
hitAlignmentString(const genome::Sequence &genome, const PatternSet &set,
                   const OffTargetHit &hit)
{
    // Locate the pattern of (guide, strand) to get its forward spec.
    const Pattern *pattern = nullptr;
    for (const Pattern &p : set.patterns) {
        if (p.guideIndex == hit.guide && p.strand == hit.strand) {
            pattern = &p;
            break;
        }
    }
    if (!pattern)
        panic("hit references a (guide, strand) with no pattern");
    const automata::HammingSpec fwd = set.forwardSpec(pattern->spec.reportId);

    std::string site = genome.slice(hit.start, set.siteLength()).str();
    std::string out;
    out.reserve(site.size());
    for (size_t j = 0; j < site.size(); ++j) {
        const bool match =
            genome::maskMatches(fwd.masks[j], genome[hit.start + j]);
        out.push_back(match ? site[j]
                            : static_cast<char>(
                                  std::tolower(
                                      static_cast<unsigned char>(
                                          site[j]))));
    }
    if (hit.strand == Strand::Reverse) {
        // Present in guide orientation: reverse complement, preserving
        // case annotations.
        std::string rc;
        rc.reserve(out.size());
        for (auto it = out.rbegin(); it != out.rend(); ++it) {
            const char c = *it;
            const bool lower = std::islower(static_cast<unsigned char>(c));
            const uint8_t code = genome::baseCode(c);
            char comp = code < genome::kNumSymbols
                            ? genome::baseChar(
                                  genome::complementCode(code))
                            : 'N';
            rc.push_back(lower ? static_cast<char>(std::tolower(
                                     static_cast<unsigned char>(comp)))
                               : comp);
        }
        out = std::move(rc);
    }
    return out;
}

} // namespace crispr::core
