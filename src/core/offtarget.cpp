#include "core/offtarget.hpp"

#include <algorithm>
#include <cctype>

#include "common/logging.hpp"
#include "baselines/brute.hpp"
#include "core/score_table.hpp"

namespace crispr::core {

std::vector<OffTargetHit>
hitsFromEvents(const genome::Sequence &genome, const PatternSet &set,
               const std::vector<automata::ReportEvent> &events,
               bool drop_unverified, size_t *dropped, bool with_scores)
{
    if (dropped)
        *dropped = 0;
    std::vector<OffTargetHit> hits;
    hits.reserve(events.size());
    const size_t len = set.siteLength();
    // The compiled weight table; sets built by tryBuildPatternSet carry
    // one, hand-assembled test sets fall back to the shared table.
    std::vector<double> fallback_weights;
    const std::vector<double> *weights = &set.scoreWeights;
    if (with_scores && set.scoreWeights.size() != set.guideLength) {
        fallback_weights = scoreWeightTable(set.guideLength);
        weights = &fallback_weights;
    }
    std::vector<size_t> offsets;
    std::vector<size_t> positions;
    for (const automata::ReportEvent &ev : events) {
        if (ev.reportId >= set.patterns.size())
            panic("event with unknown pattern id %u", ev.reportId);
        const Pattern &p = set.patterns[ev.reportId];
        CRISPR_ASSERT(p.spec.masks.size() == len);
        uint64_t start;
        if (!p.reversedStream) {
            CRISPR_ASSERT(ev.end + 1 >= len);
            start = ev.end + 1 - len;
        } else {
            CRISPR_ASSERT(ev.end < genome.size());
            start = genome.size() - 1 - ev.end;
        }
        const automata::HammingSpec fwd = set.forwardSpec(ev.reportId);
        const int mm =
            with_scores
                ? baselines::windowMismatches(genome, start, fwd, offsets)
                : baselines::windowMismatches(genome, start, fwd);
        if (mm < 0) {
            if (drop_unverified) {
                if (dropped)
                    ++*dropped;
                continue;
            }
            panic("engine reported a site at %llu that fails "
                  "re-verification",
                  static_cast<unsigned long long>(start));
        }
        OffTargetHit hit{p.guideIndex, p.strand, start, mm};
        if (with_scores) {
            // Map site offsets to guide coordinates (5'->3') and sort
            // ascending: the penalty product is order-sensitive, and
            // hitMismatchPositions() yields the same ascending order —
            // that is what makes the two paths bit-identical.
            positions.clear();
            for (size_t j : offsets) {
                size_t guide_pos;
                if (p.strand == Strand::Forward) {
                    CRISPR_ASSERT(j < set.guideLength);
                    guide_pos = j;
                } else {
                    CRISPR_ASSERT(j >= set.pamLength);
                    guide_pos = len - 1 - j;
                    CRISPR_ASSERT(guide_pos < set.guideLength);
                }
                positions.push_back(guide_pos);
            }
            std::sort(positions.begin(), positions.end());
            hit.mismatchMask = mismatchPositionsToMask(positions);
            hit.penalty = sitePenaltyFromWeights(positions, *weights);
        }
        hits.push_back(hit);
    }
    std::sort(hits.begin(), hits.end(),
              [](const OffTargetHit &a, const OffTargetHit &b) {
                  if (a.guide != b.guide)
                      return a.guide < b.guide;
                  if (a.start != b.start)
                      return a.start < b.start;
                  return a.strand < b.strand;
              });
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
    return hits;
}

bool
rankedHitBefore(const OffTargetHit &a, const OffTargetHit &b)
{
    if (a.penalty != b.penalty)
        return a.penalty > b.penalty;
    if (a.guide != b.guide)
        return a.guide < b.guide;
    if (a.start != b.start)
        return a.start < b.start;
    return a.strand < b.strand;
}

std::vector<OffTargetHit>
rankHits(const std::vector<OffTargetHit> &hits, double score_threshold,
         size_t top_k)
{
    std::vector<OffTargetHit> ranked;
    ranked.reserve(hits.size());
    for (const OffTargetHit &hit : hits)
        if (hit.penalty >= score_threshold)
            ranked.push_back(hit);
    if (top_k > 0 && top_k < ranked.size()) {
        // Deterministic top-K selection: partial_sort under a strict
        // total order places exactly the K first elements of the full
        // sort — same output as sort + truncate at a fraction of the
        // comparisons when K << hits.
        std::partial_sort(ranked.begin(),
                          ranked.begin() + static_cast<long>(top_k),
                          ranked.end(), rankedHitBefore);
        ranked.resize(top_k);
    } else {
        std::sort(ranked.begin(), ranked.end(), rankedHitBefore);
    }
    return ranked;
}

std::string
hitSiteString(const genome::Sequence &genome, const PatternSet &set,
              const OffTargetHit &hit)
{
    genome::Sequence window = genome.slice(hit.start, set.siteLength());
    if (hit.strand == Strand::Reverse)
        window = window.reverseComplement();
    return window.str();
}

std::string
hitAlignmentString(const genome::Sequence &genome, const PatternSet &set,
                   const OffTargetHit &hit)
{
    // Locate the pattern of (guide, strand) to get its forward spec.
    const Pattern *pattern = nullptr;
    for (const Pattern &p : set.patterns) {
        if (p.guideIndex == hit.guide && p.strand == hit.strand) {
            pattern = &p;
            break;
        }
    }
    if (!pattern)
        panic("hit references a (guide, strand) with no pattern");
    const automata::HammingSpec fwd = set.forwardSpec(pattern->spec.reportId);

    std::string site = genome.slice(hit.start, set.siteLength()).str();
    std::string out;
    out.reserve(site.size());
    for (size_t j = 0; j < site.size(); ++j) {
        const bool match =
            genome::maskMatches(fwd.masks[j], genome[hit.start + j]);
        out.push_back(match ? site[j]
                            : static_cast<char>(
                                  std::tolower(
                                      static_cast<unsigned char>(
                                          site[j]))));
    }
    if (hit.strand == Strand::Reverse) {
        // Present in guide orientation: reverse complement, preserving
        // case annotations.
        std::string rc;
        rc.reserve(out.size());
        for (auto it = out.rbegin(); it != out.rend(); ++it) {
            const char c = *it;
            const bool lower = std::islower(static_cast<unsigned char>(c));
            const uint8_t code = genome::baseCode(c);
            char comp = code < genome::kNumSymbols
                            ? genome::baseChar(
                                  genome::complementCode(code))
                            : 'N';
            rc.push_back(lower ? static_cast<char>(std::tolower(
                                     static_cast<unsigned char>(comp)))
                               : comp);
        }
        out = std::move(rc);
    }
    return out;
}

} // namespace crispr::core
