#include "core/bulge.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "automata/dfa.hpp"
#include "fpga/fabric.hpp"

namespace crispr::core {

using automata::EditSpec;
using automata::Nfa;
using automata::ReportEvent;

std::vector<EditSpec>
buildEditSpecs(const std::vector<Guide> &guides, const PamSpec &pam,
               int max_mismatches, int max_bulges, bool both_strands)
{
    if (guides.empty())
        fatal("no guides given");
    std::vector<EditSpec> specs;
    for (uint32_t gi = 0; gi < guides.size(); ++gi) {
        const Guide &g = guides[gi];
        std::vector<genome::BaseMask> site;
        for (size_t i = 0; i < g.protospacer.size(); ++i)
            site.push_back(
                static_cast<genome::BaseMask>(1u << g.protospacer[i]));
        for (genome::BaseMask m : pam.masks())
            site.push_back(m);

        EditSpec fwd;
        fwd.masks = site;
        fwd.maxMismatches = max_mismatches;
        fwd.maxBulges = max_bulges;
        fwd.editLo = 0;
        fwd.editHi = g.protospacer.size();
        fwd.reportId = gi * 2;
        specs.push_back(fwd);

        if (both_strands) {
            EditSpec rev;
            rev.masks = genome::reverseComplementMasks(site);
            rev.maxMismatches = max_mismatches;
            rev.maxBulges = max_bulges;
            rev.editLo = pam.size();
            rev.editHi = rev.masks.size();
            rev.reportId = gi * 2 + 1;
            specs.push_back(rev);
        }
    }
    return specs;
}

namespace {

std::vector<BulgeHit>
hitsFromEditEvents(const std::vector<ReportEvent> &raw)
{
    std::vector<BulgeHit> hits;
    hits.reserve(raw.size());
    for (const ReportEvent &ev : raw) {
        hits.push_back(BulgeHit{ev.reportId / 2,
                                ev.reportId % 2 == 0 ? Strand::Forward
                                                     : Strand::Reverse,
                                ev.end});
    }
    std::sort(hits.begin(), hits.end());
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
    return hits;
}

} // namespace

BulgeResult
bulgeSearch(const genome::Sequence &genome_seq,
            const std::vector<Guide> &guides, const BulgeConfig &config)
{
    BulgeResult result;
    Stopwatch compile_timer;
    std::vector<EditSpec> specs =
        buildEditSpecs(guides, config.pam, config.maxMismatches,
                       config.maxBulges, config.bothStrands);
    Nfa merged;
    for (const EditSpec &spec : specs)
        merged.merge(automata::buildEditNfa(spec));
    result.nfaStates = merged.size();
    result.timing.compileSeconds = compile_timer.seconds();

    std::vector<ReportEvent> events;
    auto sink = [&](uint32_t id, uint64_t end) {
        events.push_back(ReportEvent{id, end});
    };

    Stopwatch timer;
    switch (config.engine) {
      case EngineKind::Reference: {
        automata::NfaInterpreter interp(merged);
        interp.scan(genome_seq.codes(), sink);
        result.timing.kernelSeconds = timer.seconds();
        break;
      }
      case EngineKind::HscanDfa: {
        auto dfa = automata::subsetConstruct(
            merged, config.params.hscanOpts.maxDfaStates);
        if (!dfa) {
            warn("edit DFA over the state budget; falling back to the "
                 "reference interpreter");
            automata::NfaInterpreter interp(merged);
            interp.scan(genome_seq.codes(), sink);
        } else {
            dfa->scan(genome_seq.codes(), sink);
        }
        result.timing.kernelSeconds = timer.seconds();
        break;
      }
      case EngineKind::Fpga: {
        fpga::FpgaFabric fabric(merged, config.params.fpgaSpec);
        fabric.run(genome_seq.codes(), sink);
        result.timing.kernelSeconds =
            static_cast<double>(genome_seq.size()) /
            fabric.resources().clockHz * fabric.resources().passes;
        break;
      }
      case EngineKind::Ap: {
        ap::ApMachine machine = ap::fromNfa(merged);
        ap::ApSimulator sim(machine, config.params.apSimConfig);
        ap::ApRunStats stats = sim.run(genome_seq.codes(), sink);
        result.timing.kernelSeconds = sim.kernelSeconds(stats);
        break;
      }
      case EngineKind::GpuInfant2: {
        gpu::Infant2Engine engine(merged, config.params.gpuModel,
                                  config.params.gpuChunk,
                                  /*overlap=*/specs.front().masks.size() +
                                      static_cast<size_t>(
                                          config.maxBulges) + 2);
        events = engine.scanAll(genome_seq);
        result.timing.kernelSeconds =
            engine.estimateTime().kernelSeconds;
        break;
      }
      default:
        fatal("engine %s does not support bulge search "
              "(automata engines only)", engineName(config.engine));
    }
    result.timing.hostSeconds = timer.seconds();
    result.timing.totalSeconds = result.timing.kernelSeconds;

    automata::normalizeEvents(events);
    result.hits = hitsFromEditEvents(events);
    return result;
}

std::vector<BulgeHit>
bulgeSearchGolden(const genome::Sequence &genome_seq,
                  const std::vector<Guide> &guides,
                  const BulgeConfig &config)
{
    std::vector<EditSpec> specs =
        buildEditSpecs(guides, config.pam, config.maxMismatches,
                       config.maxBulges, config.bothStrands);
    auto events = automata::editDistanceScan(genome_seq, specs);
    return hitsFromEditEvents(events);
}

} // namespace crispr::core
