#include "core/breaker.hpp"

#include "common/logging.hpp"

namespace crispr::core {

CircuitBreakerBoard::CircuitBreakerBoard(BreakerOptions options)
    : options_(options)
{
}

CircuitBreakerBoard::Cell &
CircuitBreakerBoard::cellLocked(const std::string &engine)
{
    auto it = cells_.find(engine);
    if (it == cells_.end()) {
        Cell cell;
        const std::string prefix = "session.breaker." + engine + ".";
        cell.opens = metrics_.counter(prefix + "open");
        cell.halfOpens = metrics_.counter(prefix + "half_open");
        cell.closes = metrics_.counter(prefix + "closed");
        cell.stateGauge = metrics_.gauge(prefix + "state");
        it = cells_.emplace(engine, std::move(cell)).first;
    }
    return it->second;
}

void
CircuitBreakerBoard::setStateLocked(Cell &cell, State next)
{
    if (cell.state == next)
        return;
    cell.state = next;
    cell.stateGauge.set(static_cast<double>(next));
    switch (next) {
      case State::Open:
        cell.opens.inc();
        break;
      case State::HalfOpen:
        cell.halfOpens.inc();
        break;
      case State::Closed:
        cell.closes.inc();
        break;
    }
}

bool
CircuitBreakerBoard::admit(const std::string &engine)
{
    if (options_.failureThreshold == 0)
        return true;
    std::lock_guard<std::mutex> lock(mutex_);
    Cell &cell = cellLocked(engine);
    switch (cell.state) {
      case State::Closed:
        return true;
      case State::HalfOpen:
        // One probe at a time; everyone else keeps skipping.
        if (cell.probeInFlight)
            return false;
        cell.probeInFlight = true;
        return true;
      case State::Open: {
        const double waited =
            std::chrono::duration<double>(Clock::now() - cell.openedAt)
                .count();
        if (waited < options_.openSeconds)
            return false;
        setStateLocked(cell, State::HalfOpen);
        cell.probeInFlight = true;
        return true;
      }
    }
    return true;
}

void
CircuitBreakerBoard::recordSuccess(const std::string &engine)
{
    if (options_.failureThreshold == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    Cell &cell = cellLocked(engine);
    cell.consecutiveFailures = 0;
    cell.probeInFlight = false;
    setStateLocked(cell, State::Closed);
}

void
CircuitBreakerBoard::recordFailure(const std::string &engine)
{
    if (options_.failureThreshold == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    Cell &cell = cellLocked(engine);
    ++cell.consecutiveFailures;
    if (cell.state == State::HalfOpen ||
        cell.consecutiveFailures >= options_.failureThreshold) {
        cell.probeInFlight = false;
        cell.openedAt = Clock::now();
        if (cell.state == State::Open) {
            // Already open (e.g. races between recorded failures):
            // just refresh the cool-down clock.
            return;
        }
        warn("circuit breaker open for engine %s after %u consecutive "
             "failures",
             engine.c_str(), cell.consecutiveFailures);
        setStateLocked(cell, State::Open);
    }
}

CircuitBreakerBoard::State
CircuitBreakerBoard::state(const std::string &engine) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cells_.find(engine);
    return it == cells_.end() ? State::Closed : it->second.state;
}

const char *
CircuitBreakerBoard::stateName(State state)
{
    switch (state) {
      case State::Closed:
        return "closed";
      case State::HalfOpen:
        return "half_open";
      case State::Open:
        return "open";
    }
    return "unknown";
}

std::map<std::string, std::string>
CircuitBreakerBoard::stateNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, std::string> out;
    for (const auto &[engine, cell] : cells_)
        out.emplace(engine, stateName(cell.state));
    return out;
}

std::map<std::string, double>
CircuitBreakerBoard::metricsSnapshot() const
{
    std::map<std::string, double> out;
    mergeMetricsInto(out);
    return out;
}

void
CircuitBreakerBoard::mergeMetricsInto(
    std::map<std::string, double> &out) const
{
    metrics_.mergeInto(out);
}

} // namespace crispr::core
