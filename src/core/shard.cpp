#include "core/shard.hpp"

#include <algorithm>
#include <chrono>

#include "automata/interp.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"

namespace crispr::core {

using common::Error;
using common::ErrorCode;
using common::Expected;

namespace {

/**
 * Per-shard run metrics that add up across shards (work done), as
 * opposed to timings and rates, which fold as the max (the shards run
 * concurrently, so the slowest shard is the wall clock).
 */
bool
isAdditiveMetric(const std::string &key)
{
    return key == "scan.bytes" || key == "scan.chunks" ||
           key == "scan.chunks_skipped" || key == "scan.retries" ||
           key == "events.dropped" || key == "parse.records_dropped";
}

bool
futureReady(const std::future<void> &fut)
{
    return fut.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
}

} // namespace

ShardedSearchService::ShardedSearchService(
    ShardOptions options, std::shared_ptr<GenomeStore> store)
    : options_(std::move(options)),
      store_(store ? std::move(store)
                   : std::make_shared<GenomeStore>()),
      requests_(metrics_.counter("shard.requests")),
      subRequests_(metrics_.counter("shard.subrequests")),
      gathers_(metrics_.counter("shard.gathers")),
      partials_(metrics_.counter("shard.partials")),
      errors_(metrics_.counter("shard.errors")),
      completed_(metrics_.counter("shard.completed")),
      gatherSeconds_(metrics_.histogram("shard.gather_seconds")),
      shardCountGauge_(metrics_.gauge("shard.count"))
{
    // Gathers run as tasks on the shared pool: touching it here pins
    // its construction before ours, so a coordinator living in a
    // static is destroyed (and drained) before the pool unwinds.
    common::Executor::shared();
    const size_t shard_count = std::max<size_t>(1, options_.shards);
    workers_.reserve(shard_count);
    for (size_t i = 0; i < shard_count; ++i)
        workers_.push_back(
            std::make_unique<SearchService>(options_.service, store_));
    shardCountGauge_.set(static_cast<double>(shard_count));
}

ShardedSearchService::~ShardedSearchService()
{
    // Serve every queued sub-request so each shard future resolves,
    // then join the gathers before the workers they read from die.
    for (auto &worker : workers_)
        worker->flush();
    waitGathersIdle();
}

std::future<SearchResult>
ShardedSearchService::submit(std::vector<Guide> guides,
                             RequestOptions options)
{
    auto promise = std::make_shared<std::promise<SearchResult>>();
    std::future<SearchResult> fut = promise->get_future();
    enqueue(std::move(guides), std::move(options),
            [promise](Expected<SearchResult> result) {
                if (result.ok())
                    promise->set_value(std::move(result).value());
                else
                    promise->set_exception(std::make_exception_ptr(
                        common::ErrorException(result.error())));
            });
    return fut;
}

std::future<Expected<SearchResult>>
ShardedSearchService::trySubmit(std::vector<Guide> guides,
                                RequestOptions options)
{
    auto promise =
        std::make_shared<std::promise<Expected<SearchResult>>>();
    std::future<Expected<SearchResult>> fut = promise->get_future();
    enqueue(std::move(guides), std::move(options),
            [promise](Expected<SearchResult> result) {
                promise->set_value(std::move(result));
            });
    return fut;
}

void
ShardedSearchService::enqueue(std::vector<Guide> guides,
                              RequestOptions options,
                              Completion complete)
{
    requests_.inc();
    if (guides.empty()) {
        errors_.inc();
        completed_.inc();
        complete(Error(ErrorCode::InvalidArgument,
                       "request contains no guides"));
        return;
    }

    // Resolve the genome once at the coordinator (genome > genomeRef >
    // deprecated genomePath) so every shard scans the same shared
    // sequence — and a packed ref is mmapped exactly once in the
    // shared store no matter the shard count.
    SharedSequence genome = options.genome;
    if (!genome) {
        GenomeRef ref = options.genomeRef;
        if (ref.empty() && !options.genomePath.empty())
            ref = GenomeRef::fasta(options.genomePath);
        if (ref.empty()) {
            errors_.inc();
            completed_.inc();
            complete(Error(ErrorCode::InvalidArgument,
                           "request names no genome"));
            return;
        }
        auto loaded = store_->tryLoad(ref, options.config.lenientFasta,
                                      options.config.deadline);
        if (!loaded.ok()) {
            errors_.inc();
            completed_.inc();
            complete(Error(loaded.error()));
            return;
        }
        genome = std::move(loaded).value();
    }

    // Partition the requested interval — the whole genome unless the
    // caller restricted config.scanRange — into one contiguous slice
    // per worker. Worker i always owns slice i, so repeated requests
    // for one reference coalesce inside each worker as usual.
    const uint64_t n = genome->size();
    uint64_t base_begin = 0;
    uint64_t base_end = n;
    if (!options.config.scanRange.whole()) {
        base_begin = std::min<uint64_t>(options.config.scanRange.begin, n);
        base_end = std::min<uint64_t>(
            std::max(options.config.scanRange.end, base_begin), n);
    }
    const uint64_t span = base_end - base_begin;
    const size_t k = workers_.size();

    struct Slice
    {
        size_t worker;
        ScanRange range;
    };
    std::vector<Slice> slices;
    if (k == 1 || span == 0) {
        // Degenerate scatter: hand the caller's own range through
        // (whole-genome {0,0} included) so a 1-shard coordinator is
        // exactly a plain SearchService. Empty intervals stay with
        // worker 0 rather than minting a {b,b} range per shard, which
        // would collide with the {0,0}-means-whole convention at b=0.
        slices.push_back(Slice{0, options.config.scanRange});
    } else {
        // Balanced split: the first span % k slices get one extra
        // byte. Empty slices (k > span) are skipped — a shard with no
        // bases to own contributes nothing to the merge anyway.
        const uint64_t chunk = span / k;
        const uint64_t extra = span % k;
        uint64_t at = base_begin;
        for (size_t i = 0; i < k && at < base_end; ++i) {
            const uint64_t len = chunk + (i < extra ? 1 : 0);
            if (len == 0)
                continue;
            slices.push_back(Slice{i, ScanRange{at, at + len}});
            at += len;
        }
    }

    // Scatter: one sub-request per slice, same guides, same deadline,
    // scanRange narrowed to the slice. The ChunkedScanner re-reads the
    // seam overlap before each slice's begin, so boundary-straddling
    // sites land with (exactly) the shard whose slice owns their end.
    std::vector<std::future<Expected<SearchResult>>> futures;
    futures.reserve(slices.size());
    for (size_t i = 0; i < slices.size(); ++i) {
        RequestOptions sub = options;
        sub.genome = genome;
        sub.genomeRef = GenomeRef{};
        sub.genomePath.clear();
        sub.config.scanRange = slices[i].range;
        subRequests_.inc();
        std::vector<Guide> sub_guides = i + 1 == slices.size()
                                            ? std::move(guides)
                                            : guides;
        futures.push_back(workers_[slices[i].worker]->trySubmit(
            std::move(sub_guides), std::move(sub)));
    }

    // Gather: a pool task joins the shard futures with the helping
    // wait (it executes other queued work — including its own shards'
    // chunk tasks — while blocked, so scatter-gather cannot deadlock
    // the pool, even single-core) and completes the caller's promise
    // with the merged result.
    struct GatherState
    {
        std::vector<std::future<Expected<SearchResult>>> futures;
        Completion complete;
    };
    auto state = std::make_shared<GatherState>();
    state->futures = std::move(futures);
    state->complete = std::move(complete);

    // The effective top-K for the merged ranking mirrors the workers'
    // request > service-default precedence: each worker applies its
    // service defaults to the sub-request it serves, so the gather
    // must truncate with the same K those shards ranked under.
    size_t top_k = options.config.topK;
    if (top_k == 0)
        top_k = options_.service.defaults.topK;

    // mayBlock: a gather waits on shard futures, so it must only run
    // on dedicated pool workers (or a coordinator-side opt-in wait) —
    // never inside a scan's helping loop, where it could wait on a
    // sub-request queued behind the very thread helping it along.
    common::TaskOptions gather_opts;
    gather_opts.mayBlock = true;
    std::future<void> gathered = common::Executor::shared().submit(
        [this, state, top_k] {
            Stopwatch timer;
            Expected<SearchResult> merged =
                [&]() -> Expected<SearchResult> {
                try {
                    std::vector<Expected<SearchResult>> results;
                    results.reserve(state->futures.size());
                    for (auto &fut : state->futures) {
                        common::Executor::shared().wait(fut);
                        results.push_back(fut.get());
                    }
                    return mergeShardResults(std::move(results), top_k);
                } catch (const std::exception &e) {
                    // A broken worker promise (teardown race) turns
                    // into an error result instead of a lost future.
                    return Error(ErrorCode::Internal, e.what());
                }
            }();
            gathers_.inc();
            gatherSeconds_.observe(timer.seconds());
            if (!merged.ok())
                errors_.inc();
            else if (merged.value().timedOut)
                partials_.inc();
            state->complete(std::move(merged));
            completed_.inc();
        },
        gather_opts);

    std::lock_guard<std::mutex> lock(mutex_);
    // Lazy prune keeps the list proportional to in-flight gathers.
    while (!gatherTasks_.empty() && futureReady(gatherTasks_.front()))
        gatherTasks_.pop_front();
    gatherTasks_.push_back(std::move(gathered));
}

Expected<SearchResult>
ShardedSearchService::mergeShardResults(
    std::vector<Expected<SearchResult>> shards, size_t top_k)
{
    CRISPR_ASSERT(!shards.empty());
    // First shard error (by shard index) wins, deterministically.
    for (const auto &shard : shards)
        if (!shard.ok())
            return Error(shard.error());

    SearchResult out = std::move(shards.front()).value();
    for (size_t i = 1; i < shards.size(); ++i) {
        SearchResult part = std::move(shards[i]).value();
        out.hits.insert(out.hits.end(), part.hits.begin(),
                        part.hits.end());
        out.ranked.insert(out.ranked.end(), part.ranked.begin(),
                          part.ranked.end());
        out.rankedMode = out.rankedMode || part.rankedMode;
        out.run.events.insert(out.run.events.end(),
                              part.run.events.begin(),
                              part.run.events.end());
        out.droppedEvents += part.droppedEvents;
        out.timedOut = out.timedOut || part.timedOut;

        EngineTiming &t = out.run.timing;
        const EngineTiming &p = part.run.timing;
        t.compileSeconds = std::max(t.compileSeconds, p.compileSeconds);
        t.hostSeconds = std::max(t.hostSeconds, p.hostSeconds);
        t.modelKernelSeconds =
            std::max(t.modelKernelSeconds, p.modelKernelSeconds);
        t.modelTotalSeconds =
            std::max(t.modelTotalSeconds, p.modelTotalSeconds);
        t.kernelSeconds = std::max(t.kernelSeconds, p.kernelSeconds);
        t.totalSeconds = std::max(t.totalSeconds, p.totalSeconds);

        for (const auto &[key, value] : part.run.metrics) {
            double &slot = out.run.metrics[key];
            slot = isAdditiveMetric(key) ? slot + value
                                         : std::max(slot, value);
        }
    }

    // Canonicalise. Both passes are idempotent, so a 1-shard merge
    // returns its worker's result unchanged — and an N-shard union of
    // disjoint emit intervals collapses to the single-pass output
    // bit-for-bit. Device-model engines scan the whole stream in
    // every shard; their N identical copies deduplicate right here.
    std::sort(out.hits.begin(), out.hits.end(),
              [](const OffTargetHit &a, const OffTargetHit &b) {
                  if (a.guide != b.guide)
                      return a.guide < b.guide;
                  if (a.start != b.start)
                      return a.start < b.start;
                  return a.strand < b.strand;
              });
    out.hits.erase(std::unique(out.hits.begin(), out.hits.end()),
                   out.hits.end());
    automata::normalizeEvents(out.run.events);

    // Scatter-gather top-K: the per-shard listings concatenate into a
    // superset of the global top-K (see the declaration comment);
    // re-sorting under the ranked total order, deduplicating the
    // device-model engines' repeated full-genome copies, and
    // re-truncating recovers the single-shard listing exactly.
    if (out.rankedMode) {
        std::sort(out.ranked.begin(), out.ranked.end(),
                  rankedHitBefore);
        out.ranked.erase(
            std::unique(out.ranked.begin(), out.ranked.end()),
            out.ranked.end());
        if (top_k > 0 && out.ranked.size() > top_k)
            out.ranked.resize(top_k);
    }

    auto &m = out.run.metrics;
    m["scan.events"] = static_cast<double>(out.run.events.size());
    m["search.hits"] = static_cast<double>(out.hits.size());
    if (out.rankedMode)
        m["search.ranked"] = static_cast<double>(out.ranked.size());
    m["search.timed_out"] = out.timedOut ? 1.0 : 0.0;
    if (out.droppedEvents > 0)
        m["events.dropped"] =
            static_cast<double>(out.droppedEvents);
    if (out.run.timing.hostSeconds > 0.0) {
        if (auto it = m.find("scan.bytes"); it != m.end())
            m["scan.bytes_per_sec"] =
                it->second / out.run.timing.hostSeconds;
        m["search.hits_per_sec"] =
            static_cast<double>(out.hits.size()) /
            out.run.timing.hostSeconds;
    }
    m["shard.count"] = static_cast<double>(shards.size());
    return out;
}

void
ShardedSearchService::waitGathersIdle()
{
    for (;;) {
        std::future<void> fut;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            while (!gatherTasks_.empty() &&
                   futureReady(gatherTasks_.front()))
                gatherTasks_.pop_front();
            if (gatherTasks_.empty())
                return;
            fut = std::move(gatherTasks_.front());
            gatherTasks_.pop_front();
        }
        // include_blocking: the coordinator may execute its own queued
        // gathers inline — nothing a gather waits on can be waiting on
        // this thread, because the workers were drained/flushed first.
        common::Executor::shared().wait(fut, /*include_blocking=*/true);
    }
}

size_t
ShardedSearchService::drain()
{
    const size_t before = completed_.value();
    for (auto &worker : workers_)
        worker->drain();
    waitGathersIdle();
    return completed_.value() - before;
}

void
ShardedSearchService::flush()
{
    for (auto &worker : workers_)
        worker->flush();
    waitGathersIdle();
}

ServiceHealth
ShardedSearchService::health() const
{
    ServiceHealth out;
    bool first = true;
    for (const auto &worker : workers_) {
        ServiceHealth h = worker->health();
        out.queueDepth += h.queueDepth;
        out.queuedBytes += h.queuedBytes;
        out.executingBatches += h.executingBatches;
        // The shards serve one request concurrently: the wait behind
        // the deepest worker dominates, not the sum.
        out.estWaitSeconds =
            std::max(out.estWaitSeconds, h.estWaitSeconds);
        out.pressured = out.pressured || h.pressured;
        out.accepting = out.accepting && h.accepting;
        if (first)
            out.breakers = std::move(h.breakers);
        first = false;
    }
    out.executorQueueDepth = common::Executor::shared().pendingCount();
    out.storeBytes = store_->bytes();
    out.storeMmapBytes = store_->mmapBytes();
    out.storeEntries = store_->entryCount();
    return out;
}

std::map<std::string, double>
ShardedSearchService::metricsSnapshot() const
{
    std::map<std::string, double> out = metrics_.toMap();
    // MetricsRegistry::mergeInto *assigns* over existing keys, so the
    // workers' service.* counters are folded by hand: counts sum,
    // histogram max/percentile keys take the max across workers.
    // (Breaker boards are per worker; read them via worker(i).)
    for (const auto &worker : workers_) {
        for (const auto &[key, value] : worker->metricsSnapshot()) {
            if (key.rfind("service.", 0) != 0)
                continue;
            const bool fold_max = key.size() > 4 &&
                                  (key.ends_with(".max") ||
                                   key.ends_with(".p50") ||
                                   key.ends_with(".p90") ||
                                   key.ends_with(".p99"));
            double &slot = out[key];
            slot = fold_max ? std::max(slot, value) : slot + value;
        }
    }
    store_->mergeMetricsInto(out);
    common::Executor::shared().mergeMetricsInto(out);
    return out;
}

} // namespace crispr::core
