/**
 * @file
 * Guide RNA and PAM modelling: the user-facing vocabulary of the
 * library. A Cas9 target site on the forward strand is laid out as
 * 20 nt of protospacer followed by a 3' PAM (NGG canonically; NAG / NRG
 * accepted as non-canonical).
 */

#ifndef CRISPR_CORE_GUIDE_HPP_
#define CRISPR_CORE_GUIDE_HPP_

#include <string>
#include <vector>

#include "genome/sequence.hpp"

namespace crispr::core {

/** PAM specification: an IUPAC string 3' of the protospacer. */
struct PamSpec
{
    std::string iupac = "NGG";

    /** Masks of the PAM positions. */
    std::vector<genome::BaseMask> masks() const;

    size_t size() const { return iupac.size(); }
};

/** Common PAM presets. */
PamSpec pamNGG();
PamSpec pamNAG();
PamSpec pamNRG(); //!< R = A|G: canonical + non-canonical in one pattern

/** A guide RNA targeting sequence. */
struct Guide
{
    std::string name;
    genome::Sequence protospacer; //!< concrete ACGT, 5'->3'
};

/**
 * Construct a guide from an ASCII protospacer. The sequence must be
 * concrete ACGT (U tolerated); degenerate letters are rejected.
 */
Guide makeGuide(const std::string &name, const std::string &sequence);

/** Generate `count` random guides of `length` nt (deterministic). */
std::vector<Guide> randomGuides(size_t count, size_t length,
                                uint64_t seed);

/**
 * Sample `count` guides from N-free windows of a genome (each then has
 * at least one perfect on-target site).
 */
std::vector<Guide> guidesFromGenome(const genome::Sequence &ref,
                                    size_t count, size_t length,
                                    uint64_t seed);

/**
 * Order-sensitive FNV-1a digest of a guide set (names + protospacer
 * codes). Together with compileOptionsKey it keys the on-disk pattern
 * database: any change to the guide set changes the key, so a stale
 * compiled blob is never loaded for the wrong guides.
 */
uint64_t guideSetDigest(const std::vector<Guide> &guides);

} // namespace crispr::core

#endif // CRISPR_CORE_GUIDE_HPP_
