#include "core/guide.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "genome/generator.hpp"

namespace crispr::core {

std::vector<genome::BaseMask>
PamSpec::masks() const
{
    if (iupac.empty())
        fatal("PAM must have at least one position");
    return genome::masksFromIupac(iupac);
}

PamSpec
pamNGG()
{
    return PamSpec{"NGG"};
}

PamSpec
pamNAG()
{
    return PamSpec{"NAG"};
}

PamSpec
pamNRG()
{
    return PamSpec{"NRG"};
}

Guide
makeGuide(const std::string &name, const std::string &sequence)
{
    if (sequence.empty())
        fatal("guide '%s' has an empty sequence", name.c_str());
    for (char c : sequence) {
        const uint8_t code = genome::baseCode(c);
        if (code >= 4)
            fatal("guide '%s' contains non-ACGT character '%c'",
                  name.c_str(), c);
    }
    return Guide{name, genome::Sequence::fromString(sequence)};
}

std::vector<Guide>
randomGuides(size_t count, size_t length, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Guide> guides;
    guides.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        guides.push_back(Guide{strprintf("g%zu", i),
                               genome::randomGuide(rng, length)});
    }
    return guides;
}

std::vector<Guide>
guidesFromGenome(const genome::Sequence &ref, size_t count,
                 size_t length, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Guide> guides;
    guides.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        genome::Sequence s =
            genome::sampleGuideFromGenome(ref, rng, length);
        if (s.empty())
            fatal("genome has no N-free window of length %zu", length);
        guides.push_back(Guide{strprintf("g%zu", i), std::move(s)});
    }
    return guides;
}

uint64_t
guideSetDigest(const std::vector<Guide> &guides)
{
    common::BlobWriter w;
    w.u32(static_cast<uint32_t>(guides.size()));
    for (const Guide &g : guides) {
        w.str(g.name);
        w.str(std::string_view(
            reinterpret_cast<const char *>(g.protospacer.codes().data()),
            g.protospacer.size()));
    }
    return common::fnv1a64(w.buffer());
}

} // namespace crispr::core
