/**
 * @file
 * The pluggable engine interface. An Engine adapter turns one
 * platform/tool into two pure phases:
 *
 *   compile(PatternSet, EngineParams) -> CompiledPattern   (once)
 *   scan(CompiledPattern, SequenceView) -> EngineRun       (many times)
 *
 * CompiledPattern is an immutable, shareable artifact (pattern
 * database, union NFA, placement, ...) so one compilation can serve
 * concurrent scans against different genomes or chunks — the seam that
 * SearchSession's compile-once cache and the ChunkedScanner streaming
 * pipeline are built on. Adapters register themselves with
 * EngineRegistry (see engine_registry.hpp); core/ contains no
 * per-engine dispatch.
 */

#ifndef CRISPR_CORE_ENGINE_HPP_
#define CRISPR_CORE_ENGINE_HPP_

#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "core/engines.hpp"
#include "hscan/simd.hpp"

namespace crispr::core {

/**
 * Per-scan runtime tuning handed from RuntimeOptions down to the
 * adapter. Nothing in here may change which events a scan reports —
 * only how the pass executes (the ScanOptions/EngineParams split
 * mirrors the RuntimeOptions/CompileOptions one, so compiled patterns
 * stay shareable across scans that tune differently).
 */
struct ScanOptions
{
    /**
     * Requested SIMD tier for the vector-capable CPU kernels
     * (Shift-Or, prefilter anchor probe). Resolved per scan against
     * the CRISPR_SIMD env override and host CPUID; every tier is
     * bit-identical. Ignored by engines without vector kernels.
     */
    hscan::SimdTier simdTier = hscan::SimdTier::Auto;
};

/**
 * A non-owning view of genome codes handed to Engine::scan: either a
 * whole in-memory Sequence or a raw window of one (a streamed chunk).
 * Adapters that stream symbols use codes() directly; adapters built on
 * whole-Sequence interfaces call sequence(), which is zero-copy for a
 * Sequence-backed view and copies only the viewed window otherwise.
 */
class SequenceView
{
  public:
    SequenceView(const genome::Sequence &seq)
        : seq_(&seq), codes_(seq.codes())
    {
    }

    explicit SequenceView(std::span<const uint8_t> codes) : codes_(codes)
    {
    }

    std::span<const uint8_t> codes() const { return codes_; }
    size_t size() const { return codes_.size(); }
    bool empty() const { return codes_.empty(); }

    /**
     * The view as a Sequence; `storage` receives a copy of the window
     * when the view is not backed by a whole Sequence.
     */
    const genome::Sequence &sequence(genome::Sequence &storage) const;

  private:
    const genome::Sequence *seq_ = nullptr;
    std::span<const uint8_t> codes_;
};

/**
 * The immutable result of compiling a pattern set for one engine.
 * Shareable across threads; every field is fixed after compile().
 */
struct CompiledPattern
{
    EngineKind kind;
    std::shared_ptr<const PatternSet> set;
    EngineParams params;
    double compileSeconds = 0.0;
    std::map<std::string, double> metrics; //!< compile-time metrics
    std::shared_ptr<const void> state;     //!< engine-specific artifact

    /** The engine-specific compiled state (adapter-internal type). */
    template <typename T>
    const T &
    stateAs() const
    {
        return *static_cast<const T *>(state.get());
    }
};

/**
 * One engine adapter. Stateless: all per-search state lives in the
 * CompiledPattern and the EngineRun, so a single registered instance
 * serves every session concurrently.
 *
 * compile() and scan() are non-virtual wrappers that handle the
 * engine-independent bookkeeping (orientation check, compile timing,
 * metric merging); adapters implement compileState() and scanImpl().
 */
class Engine
{
  public:
    virtual ~Engine() = default;

    virtual EngineKind kind() const = 0;
    virtual const char *name() const = 0;

    /** The pattern-set orientation this engine requires. */
    virtual Orientation
    requiredOrientation() const
    {
        return Orientation::SiteOrder;
    }

    /**
     * True when scan() is position-local (an event depends only on the
     * window it ends in), so the ChunkedScanner may drive this engine
     * over overlapping chunks with bit-identical results. True for the
     * CPU engines; false for the device-model engines, whose timing
     * models need the whole stream.
     */
    virtual bool supportsChunkedScan() const { return false; }

    /**
     * Compile a pattern set once for many scans. Checks the set's
     * orientation (FatalError on mismatch), times the adapter's
     * compileState(), and records compile-time metrics.
     */
    CompiledPattern compile(const PatternSet &set,
                            const EngineParams &params = {}) const;

    /**
     * Scan a genome (or chunk) view with a compiled pattern. Events are
     * normalised and local to the view (end indices relative to the
     * view's first code). Thread-safe for concurrent calls sharing one
     * CompiledPattern. `options` carries per-scan runtime tuning (SIMD
     * tier); results are options-independent.
     */
    EngineRun scan(const CompiledPattern &compiled,
                   const SequenceView &view,
                   const ScanOptions &options = {}) const;

    /**
     * Non-throwing compile: an orientation mismatch returns
     * InvalidArgument and an adapter failure (DFA state budget, device
     * capacity, ...) returns CompileFailed, both tagged with the
     * engine name. The seam SearchSession's fallback chain pivots on.
     */
    common::Expected<CompiledPattern>
    tryCompile(const PatternSet &set,
               const EngineParams &params = {}) const;

    /** Non-throwing scan: adapter failures return ScanFailed. */
    common::Expected<EngineRun>
    tryScan(const CompiledPattern &compiled, const SequenceView &view,
            const ScanOptions &options = {}) const;

    /**
     * Capability flag: true when this adapter implements compiled-state
     * serialization (the ahead-of-time pattern database path). The
     * CPU automata engines (DFA, NFA, Shift-Or, hscan dense-table)
     * support it; the device-model engines do not.
     */
    virtual bool supportsSerialization() const { return false; }

    /**
     * Serialize a compiled pattern's engine state into a versioned,
     * content-hashed blob (see common/serial.hpp). The blob embeds the
     * engine name and a digest of the pattern set, so deserializeState
     * can reject a blob handed to the wrong engine or guide set.
     * @return UnsupportedEngine when the adapter has no serialization.
     */
    common::Expected<std::vector<uint8_t>>
    serializeState(const CompiledPattern &compiled) const;

    /**
     * Rebuild a scan-ready CompiledPattern from a serializeState()
     * blob plus the pattern set and params it was compiled from —
     * without re-running compilation (the warm-restart fast path).
     * Scans of the result are bit-identical to scans of a fresh
     * compile (tested per engine). @return UnsupportedEngine without
     * adapter support; InvalidArgument for an engine/pattern-set/
     * version mismatch; ParseError for a truncated or corrupt blob.
     */
    common::Expected<CompiledPattern>
    deserializeState(const PatternSet &set, const EngineParams &params,
                     std::span<const uint8_t> blob) const;

  protected:
    /**
     * Build the engine-specific compiled artifact. Compile-time
     * metrics (artifact sizes, placements, ...) are published as
     * registry handles — dotted lower-case names, with `compile.states`
     * for the engine's natural automaton-size figure — and bridged into
     * CompiledPattern::metrics by the caller.
     */
    virtual std::shared_ptr<const void>
    compileState(const PatternSet &set, const EngineParams &params,
                 common::MetricsRegistry &metrics) const = 0;

    /**
     * Fill `run` from a scan of `view`: events (normalised, view-local)
     * plus host/kernel/total timing; per-scan metrics go through the
     * registry. `run.kind`, compile timing and metric merging are
     * handled by the caller. `options` is runtime tuning only — two
     * scans differing solely in options report identical events.
     */
    virtual void scanImpl(const CompiledPattern &compiled,
                          const SequenceView &view,
                          const ScanOptions &options, EngineRun &run,
                          common::MetricsRegistry &metrics) const = 0;

    /**
     * Serialize the engine-specific compiled artifact (the inner
     * payload of serializeState's envelope). Only called when
     * supportsSerialization() is true.
     */
    virtual common::Expected<std::vector<uint8_t>>
    serializeStateImpl(const CompiledPattern &compiled) const;

    /**
     * Rebuild the engine-specific artifact from serializeStateImpl's
     * bytes. Load-time metrics mirror compileState's (compile.states,
     * ...). Only called when supportsSerialization() is true, after
     * the envelope, engine name, and pattern-set digest checks passed.
     */
    virtual common::Expected<std::shared_ptr<const void>>
    deserializeStateImpl(const PatternSet &set,
                         const EngineParams &params,
                         std::span<const uint8_t> payload,
                         common::MetricsRegistry &metrics) const;
};

} // namespace crispr::core

#endif // CRISPR_CORE_ENGINE_HPP_
