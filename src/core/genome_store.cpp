#include "core/genome_store.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "common/logging.hpp"
#include "genome/fasta.hpp"

namespace crispr::core {

using common::Error;
using common::ErrorCode;

GenomeStore::GenomeStore(size_t max_bytes)
    : maxBytes_(max_bytes), hits_(metrics_.counter("store.hits")),
      misses_(metrics_.counter("store.misses")),
      loads_(metrics_.counter("store.loads")),
      evictions_(metrics_.counter("store.evictions")),
      deadlineExceeded_(metrics_.counter("store.deadline_exceeded")),
      bytesGauge_(metrics_.gauge("store.bytes")),
      entriesGauge_(metrics_.gauge("store.entries")),
      mmapBytesGauge_(metrics_.gauge("store.mmap_bytes"))
{
}

GenomeStore::~GenomeStore() = default;

std::list<GenomeStore::Entry>::iterator
GenomeStore::findLocked(const std::string &key)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
        if (it->key == key)
            return it;
    return entries_.end();
}

void
GenomeStore::dropEntryBytesLocked(const Entry &entry)
{
    if (!entry.ready)
        return;
    bytes_ -= entry.bytes;
    mmapBytes_ -= entry.mmapBytes;
}

void
GenomeStore::evictOverBudgetLocked()
{
    // Walk from the LRU end, skipping in-flight loads (their size is
    // unknown and a waiter owns their future). An evicted sequence
    // stays alive for whoever still holds its shared_ptr.
    auto it = entries_.end();
    while (bytes_ > maxBytes_ && it != entries_.begin()) {
        --it;
        if (!it->ready)
            continue;
        dropEntryBytesLocked(*it);
        it = entries_.erase(it);
        evictions_.inc();
    }
    bytesGauge_.set(static_cast<double>(bytes_));
    mmapBytesGauge_.set(static_cast<double>(mmapBytes_));
    entriesGauge_.set(static_cast<double>(entries_.size()));
}

common::Expected<SharedSequence>
GenomeStore::tryGetOrLoadImpl(const std::string &key,
                              const RichLoader &loader,
                              const common::Deadline &deadline)
{
    // A request that is already dead must not queue behind (or start) a
    // multi-second decode it can never use.
    if (deadline.expired()) {
        deadlineExceeded_.inc();
        return Error(deadline.cancelled() ? ErrorCode::Cancelled
                                          : ErrorCode::DeadlineExceeded,
                     "deadline expired before genome load")
            .withContext("key", key);
    }

    std::promise<LoadResult> promise;
    std::shared_future<LoadResult> fut;
    uint64_t my_id = 0;
    bool load_here = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = findLocked(key);
        if (it != entries_.end()) {
            hits_.inc();
            entries_.splice(entries_.begin(), entries_, it);
            fut = it->future;
        } else {
            misses_.inc();
            loads_.inc();
            fut = promise.get_future().share();
            my_id = nextId_++;
            entries_.push_front(Entry{key, fut, my_id, 0, false,
                                      nullptr, 0});
            entriesGauge_.set(static_cast<double>(entries_.size()));
            load_here = true;
        }
    }
    if (!load_here) {
        // Wait in bounded slices so a deadline that expires (or a
        // token cancelled) while another caller decodes returns
        // promptly; the decode itself continues and fills the cache
        // for everyone else. A ready future exits on the first probe.
        for (;;) {
            const double slice =
                std::clamp(deadline.remainingSeconds(), 0.0, 0.01);
            if (fut.wait_for(std::chrono::duration<double>(slice)) ==
                std::future_status::ready)
                break;
            if (deadline.expired()) {
                deadlineExceeded_.inc();
                return Error(deadline.cancelled()
                                 ? ErrorCode::Cancelled
                                 : ErrorCode::DeadlineExceeded,
                             "deadline expired waiting for genome "
                             "load")
                    .withContext("key", key);
            }
        }
        return fut.get();
    }

    // Cache miss: this caller decodes while every racer on the same
    // key waits on the shared future — one parse, many readers.
    std::shared_ptr<const genome::PackedFile> mapped;
    LoadResult result = [&]() -> LoadResult {
        auto loaded = loader();
        if (!loaded.ok())
            return Error(loaded.error());
        mapped = std::move(loaded.value().mapped);
        return SharedSequence(std::make_shared<const genome::Sequence>(
            std::move(loaded.value().seq)));
    }();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = findLocked(key);
        // The entry may be gone (erase()/clear() raced the load) or
        // re-created by a later load; only finish our own slot.
        if (it != entries_.end() && it->id == my_id) {
            if (result.ok()) {
                it->bytes = result.value()->size();
                it->ready = true;
                it->mapped = mapped;
                it->mmapBytes =
                    mapped && mapped->memoryMapped()
                        ? mapped->fileBytes()
                        : 0;
                bytes_ += it->bytes;
                mmapBytes_ += it->mmapBytes;
                mmapBytesGauge_.set(static_cast<double>(mmapBytes_));
                evictOverBudgetLocked();
            } else {
                // Errors are not cached: drop the slot so the next
                // get retries the load.
                entries_.erase(it);
                entriesGauge_.set(
                    static_cast<double>(entries_.size()));
            }
        }
    }
    promise.set_value(result);
    return result;
}

common::Expected<SharedSequence>
GenomeStore::tryGetOrLoad(const std::string &key, const Loader &loader,
                          const common::Deadline &deadline)
{
    return tryGetOrLoadImpl(
        key,
        [&]() -> common::Expected<Loaded> {
            auto loaded = loader();
            if (!loaded.ok())
                return Error(loaded.error());
            return Loaded{std::move(loaded).value(), nullptr};
        },
        deadline);
}

common::Expected<SharedSequence>
GenomeStore::tryLoad(const GenomeRef &ref, bool lenient,
                     const common::Deadline &deadline)
{
    if (ref.empty())
        return Error(ErrorCode::InvalidArgument,
                     "empty genome reference");
    switch (ref.source) {
    case GenomeSource::Memory: {
        // Memory refs never load from anywhere: they must have been
        // put() first. get() under the legacy key keeps hit/miss
        // accounting identical to the string API.
        if (SharedSequence seq = get(ref.key()))
            return seq;
        return Error(ErrorCode::InvalidArgument,
                     "in-memory genome ref is not in the store "
                     "(put() it first)")
            .withContext("key", ref.key());
    }
    case GenomeSource::FastaFile:
        return tryGetOrLoadImpl(
            ref.key(),
            [&]() -> common::Expected<Loaded> {
                std::ifstream in(ref.id, std::ios::binary);
                if (!in)
                    return Error(ErrorCode::InvalidArgument,
                                 "cannot open FASTA file")
                        .withContext("path", ref.id);
                try {
                    genome::FastaParseOptions options;
                    options.lenient = lenient;
                    size_t dropped = 0;
                    auto records =
                        genome::readFasta(in, options, &dropped);
                    return Loaded{
                        genome::concatenateRecords(records), nullptr};
                } catch (const FatalError &e) {
                    return Error(ErrorCode::ParseError, e.what())
                        .withContext("path", ref.id);
                }
            },
            deadline);
    case GenomeSource::PackedFile:
        return tryGetOrLoadImpl(
            ref.key(),
            [&]() -> common::Expected<Loaded> {
                auto mapped = genome::PackedFile::map(ref.id);
                if (!mapped.ok())
                    return Error(mapped.error());
                // One decoded heap copy per store (shared by every
                // worker); the mapping handle rides along so the
                // packed pages stay shared for the entry's lifetime.
                return Loaded{mapped.value()->unpack(),
                              std::move(mapped).value()};
            },
            deadline);
    }
    return Error(ErrorCode::InvalidArgument,
                 "unknown genome ref source");
}

SharedSequence
GenomeStore::load(const GenomeRef &ref, bool lenient)
{
    return tryLoad(ref, lenient).valueOrThrow();
}

common::Expected<SharedSequence>
GenomeStore::tryLoadFile(const std::string &path, bool lenient,
                         const common::Deadline &deadline)
{
    return tryLoad(GenomeRef::fasta(path), lenient, deadline);
}

SharedSequence
GenomeStore::getOrLoad(const std::string &key, const Loader &loader)
{
    return tryGetOrLoad(key, loader).valueOrThrow();
}

SharedSequence
GenomeStore::loadFile(const std::string &path, bool lenient)
{
    return tryLoadFile(path, lenient).valueOrThrow();
}

SharedSequence
GenomeStore::put(const GenomeRef &ref, genome::Sequence seq)
{
    return put(ref.key(), std::move(seq));
}

SharedSequence
GenomeStore::put(const std::string &key, genome::Sequence seq)
{
    auto ptr = std::make_shared<const genome::Sequence>(std::move(seq));
    std::promise<LoadResult> promise;
    std::shared_future<LoadResult> fut = promise.get_future().share();
    promise.set_value(LoadResult(SharedSequence(ptr)));

    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = findLocked(key); it != entries_.end()) {
        dropEntryBytesLocked(*it);
        entries_.erase(it);
    }
    entries_.push_front(Entry{key, fut, nextId_++, ptr->size(), true,
                              nullptr, 0});
    bytes_ += ptr->size();
    evictOverBudgetLocked();
    return ptr;
}

SharedSequence
GenomeStore::get(const GenomeRef &ref)
{
    return get(ref.key());
}

SharedSequence
GenomeStore::get(const std::string &key)
{
    std::shared_future<LoadResult> fut;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = findLocked(key);
        if (it == entries_.end()) {
            misses_.inc();
            return nullptr;
        }
        hits_.inc();
        entries_.splice(entries_.begin(), entries_, it);
        fut = it->future;
    }
    // An in-flight load resolves here; a failed one reads as absent.
    const LoadResult &result = fut.get();
    return result.ok() ? result.value() : nullptr;
}

bool
GenomeStore::erase(const GenomeRef &ref)
{
    return erase(ref.key());
}

bool
GenomeStore::erase(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = findLocked(key);
    if (it == entries_.end())
        return false;
    dropEntryBytesLocked(*it);
    entries_.erase(it);
    bytesGauge_.set(static_cast<double>(bytes_));
    mmapBytesGauge_.set(static_cast<double>(mmapBytes_));
    entriesGauge_.set(static_cast<double>(entries_.size()));
    return true;
}

void
GenomeStore::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    bytes_ = 0;
    mmapBytes_ = 0;
    bytesGauge_.set(0.0);
    mmapBytesGauge_.set(0.0);
    entriesGauge_.set(0.0);
}

size_t
GenomeStore::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

size_t
GenomeStore::mmapBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return mmapBytes_;
}

size_t
GenomeStore::entryCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

size_t
GenomeStore::hits() const
{
    return hits_.value();
}

size_t
GenomeStore::misses() const
{
    return misses_.value();
}

size_t
GenomeStore::evictions() const
{
    return evictions_.value();
}

size_t
GenomeStore::deadlineExceededCount() const
{
    return deadlineExceeded_.value();
}

std::map<std::string, double>
GenomeStore::metricsSnapshot() const
{
    return metrics_.toMap();
}

void
GenomeStore::mergeMetricsInto(std::map<std::string, double> &out) const
{
    metrics_.mergeInto(out);
}

} // namespace crispr::core
