#include "core/genome_store.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "common/logging.hpp"
#include "genome/fasta.hpp"

namespace crispr::core {

using common::Error;
using common::ErrorCode;

GenomeStore::GenomeStore(size_t max_bytes)
    : maxBytes_(max_bytes), hits_(metrics_.counter("store.hits")),
      misses_(metrics_.counter("store.misses")),
      loads_(metrics_.counter("store.loads")),
      evictions_(metrics_.counter("store.evictions")),
      deadlineExceeded_(metrics_.counter("store.deadline_exceeded")),
      bytesGauge_(metrics_.gauge("store.bytes")),
      entriesGauge_(metrics_.gauge("store.entries"))
{
}

GenomeStore::~GenomeStore() = default;

std::list<GenomeStore::Entry>::iterator
GenomeStore::findLocked(const std::string &key)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
        if (it->key == key)
            return it;
    return entries_.end();
}

void
GenomeStore::evictOverBudgetLocked()
{
    // Walk from the LRU end, skipping in-flight loads (their size is
    // unknown and a waiter owns their future). An evicted sequence
    // stays alive for whoever still holds its shared_ptr.
    auto it = entries_.end();
    while (bytes_ > maxBytes_ && it != entries_.begin()) {
        --it;
        if (!it->ready)
            continue;
        bytes_ -= it->bytes;
        it = entries_.erase(it);
        evictions_.inc();
    }
    bytesGauge_.set(static_cast<double>(bytes_));
    entriesGauge_.set(static_cast<double>(entries_.size()));
}

common::Expected<SharedSequence>
GenomeStore::tryGetOrLoad(const std::string &key, const Loader &loader,
                          const common::Deadline &deadline)
{
    // A request that is already dead must not queue behind (or start) a
    // multi-second decode it can never use.
    if (deadline.expired()) {
        deadlineExceeded_.inc();
        return Error(deadline.cancelled() ? ErrorCode::Cancelled
                                          : ErrorCode::DeadlineExceeded,
                     "deadline expired before genome load")
            .withContext("key", key);
    }

    std::promise<LoadResult> promise;
    std::shared_future<LoadResult> fut;
    uint64_t my_id = 0;
    bool load_here = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = findLocked(key);
        if (it != entries_.end()) {
            hits_.inc();
            entries_.splice(entries_.begin(), entries_, it);
            fut = it->future;
        } else {
            misses_.inc();
            loads_.inc();
            fut = promise.get_future().share();
            my_id = nextId_++;
            entries_.push_front(Entry{key, fut, my_id, 0, false});
            entriesGauge_.set(static_cast<double>(entries_.size()));
            load_here = true;
        }
    }
    if (!load_here) {
        // Wait in bounded slices so a deadline that expires (or a
        // token cancelled) while another caller decodes returns
        // promptly; the decode itself continues and fills the cache
        // for everyone else. A ready future exits on the first probe.
        for (;;) {
            const double slice =
                std::clamp(deadline.remainingSeconds(), 0.0, 0.01);
            if (fut.wait_for(std::chrono::duration<double>(slice)) ==
                std::future_status::ready)
                break;
            if (deadline.expired()) {
                deadlineExceeded_.inc();
                return Error(deadline.cancelled()
                                 ? ErrorCode::Cancelled
                                 : ErrorCode::DeadlineExceeded,
                             "deadline expired waiting for genome "
                             "load")
                    .withContext("key", key);
            }
        }
        return fut.get();
    }

    // Cache miss: this caller decodes while every racer on the same
    // key waits on the shared future — one parse, many readers.
    LoadResult result = [&]() -> LoadResult {
        auto loaded = loader();
        if (!loaded.ok())
            return Error(loaded.error());
        return SharedSequence(std::make_shared<const genome::Sequence>(
            std::move(loaded).value()));
    }();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = findLocked(key);
        // The entry may be gone (erase()/clear() raced the load) or
        // re-created by a later load; only finish our own slot.
        if (it != entries_.end() && it->id == my_id) {
            if (result.ok()) {
                it->bytes = result.value()->size();
                it->ready = true;
                bytes_ += it->bytes;
                evictOverBudgetLocked();
            } else {
                // Errors are not cached: drop the slot so the next
                // get retries the load.
                entries_.erase(it);
                entriesGauge_.set(
                    static_cast<double>(entries_.size()));
            }
        }
    }
    promise.set_value(result);
    return result;
}

common::Expected<SharedSequence>
GenomeStore::tryLoadFile(const std::string &path, bool lenient,
                         const common::Deadline &deadline)
{
    return tryGetOrLoad(
        path,
        [&]() -> common::Expected<genome::Sequence> {
            std::ifstream in(path, std::ios::binary);
            if (!in)
                return Error(ErrorCode::InvalidArgument,
                             "cannot open FASTA file")
                    .withContext("path", path);
            try {
                genome::FastaParseOptions options;
                options.lenient = lenient;
                size_t dropped = 0;
                auto records = genome::readFasta(in, options, &dropped);
                return genome::concatenateRecords(records);
            } catch (const FatalError &e) {
                return Error(ErrorCode::ParseError, e.what())
                    .withContext("path", path);
            }
        },
        deadline);
}

SharedSequence
GenomeStore::getOrLoad(const std::string &key, const Loader &loader)
{
    return tryGetOrLoad(key, loader).valueOrThrow();
}

SharedSequence
GenomeStore::loadFile(const std::string &path, bool lenient)
{
    return tryLoadFile(path, lenient).valueOrThrow();
}

SharedSequence
GenomeStore::put(const std::string &key, genome::Sequence seq)
{
    auto ptr = std::make_shared<const genome::Sequence>(std::move(seq));
    std::promise<LoadResult> promise;
    std::shared_future<LoadResult> fut = promise.get_future().share();
    promise.set_value(LoadResult(SharedSequence(ptr)));

    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = findLocked(key); it != entries_.end()) {
        if (it->ready)
            bytes_ -= it->bytes;
        entries_.erase(it);
    }
    entries_.push_front(Entry{key, fut, nextId_++, ptr->size(), true});
    bytes_ += ptr->size();
    evictOverBudgetLocked();
    return ptr;
}

SharedSequence
GenomeStore::get(const std::string &key)
{
    std::shared_future<LoadResult> fut;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = findLocked(key);
        if (it == entries_.end()) {
            misses_.inc();
            return nullptr;
        }
        hits_.inc();
        entries_.splice(entries_.begin(), entries_, it);
        fut = it->future;
    }
    // An in-flight load resolves here; a failed one reads as absent.
    const LoadResult &result = fut.get();
    return result.ok() ? result.value() : nullptr;
}

bool
GenomeStore::erase(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = findLocked(key);
    if (it == entries_.end())
        return false;
    if (it->ready)
        bytes_ -= it->bytes;
    entries_.erase(it);
    bytesGauge_.set(static_cast<double>(bytes_));
    entriesGauge_.set(static_cast<double>(entries_.size()));
    return true;
}

void
GenomeStore::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    bytes_ = 0;
    bytesGauge_.set(0.0);
    entriesGauge_.set(0.0);
}

size_t
GenomeStore::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

size_t
GenomeStore::entryCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

size_t
GenomeStore::hits() const
{
    return hits_.value();
}

size_t
GenomeStore::misses() const
{
    return misses_.value();
}

size_t
GenomeStore::evictions() const
{
    return evictions_.value();
}

size_t
GenomeStore::deadlineExceededCount() const
{
    return deadlineExceeded_.value();
}

std::map<std::string, double>
GenomeStore::metricsSnapshot() const
{
    return metrics_.toMap();
}

void
GenomeStore::mergeMetricsInto(std::map<std::string, double> &out) const
{
    metrics_.mergeInto(out);
}

} // namespace crispr::core
