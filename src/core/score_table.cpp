#include "core/score_table.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::core {

namespace {

/** Hsu et al. 2013 per-position mismatch weights for 20-nt guides,
 *  index 0 = PAM-distal. Higher weight = more damaging mismatch. */
constexpr double kHsuWeights[20] = {
    0.000, 0.000, 0.014, 0.000, 0.000, 0.395, 0.317, 0.000, 0.389,
    0.079, 0.445, 0.508, 0.613, 0.851, 0.732, 0.828, 0.615, 0.804,
    0.685, 0.583,
};

} // namespace

std::vector<double>
scoreWeightTable(size_t guide_length)
{
    if (guide_length == 20)
        return {std::begin(kHsuWeights), std::end(kHsuWeights)};
    std::vector<double> weights(guide_length, 0.0);
    if (guide_length <= 1)
        return weights;
    // Fallback: linear ramp from 0 (PAM-distal) to ~0.8 (PAM-proximal).
    for (size_t pos = 0; pos < guide_length; ++pos)
        weights[pos] = 0.8 * static_cast<double>(pos) /
                       static_cast<double>(guide_length - 1);
    return weights;
}

double
sitePenaltyFromWeights(const std::vector<size_t> &mismatch_positions,
                       const std::vector<double> &weights)
{
    if (mismatch_positions.empty())
        return 1.0; // a perfect duplicate competes at full strength

    const size_t guide_length = weights.size();
    // Product of (1 - w_p) over mismatches ...
    double product = 1.0;
    for (size_t p : mismatch_positions) {
        CRISPR_ASSERT(p < guide_length);
        product *= 1.0 - weights[p];
    }
    // ... damped by mean pairwise mismatch distance and count (the
    // published formula's second and third factors).
    const size_t n = mismatch_positions.size();
    double distance_term = 1.0;
    if (n > 1) {
        auto sorted = mismatch_positions;
        std::sort(sorted.begin(), sorted.end());
        const double mean_d =
            static_cast<double>(sorted.back() - sorted.front()) /
            static_cast<double>(n - 1);
        distance_term =
            1.0 / ((static_cast<double>(guide_length - 1) - mean_d) /
                       static_cast<double>(guide_length - 1) * 4.0 +
                   1.0);
    }
    const double count_term =
        1.0 / (static_cast<double>(n) * static_cast<double>(n));
    return product * distance_term * count_term;
}

uint64_t
mismatchPositionsToMask(const std::vector<size_t> &positions)
{
    uint64_t mask = 0;
    for (size_t p : positions) {
        CRISPR_ASSERT(p < 64);
        mask |= uint64_t{1} << p;
    }
    return mask;
}

std::vector<size_t>
mismatchMaskToPositions(uint64_t mask)
{
    std::vector<size_t> positions;
    for (size_t p = 0; mask != 0; ++p, mask >>= 1)
        if (mask & 1)
            positions.push_back(p);
    return positions;
}

} // namespace crispr::core
