#include "core/compile.hpp"

#include <algorithm>

#include <bit>

#include "common/logging.hpp"
#include "common/serial.hpp"
#include "core/score_table.hpp"

namespace crispr::core {

using automata::HammingSpec;
using genome::BaseMask;

const char *
strandStr(Strand s)
{
    return s == Strand::Forward ? "+" : "-";
}

namespace {

/** Forward-coordinate site masks: guide then PAM. */
std::vector<BaseMask>
siteMasks(const Guide &guide, const PamSpec &pam)
{
    std::vector<BaseMask> masks;
    masks.reserve(guide.protospacer.size() + pam.size());
    for (size_t i = 0; i < guide.protospacer.size(); ++i) {
        masks.push_back(
            static_cast<BaseMask>(1u << guide.protospacer[i]));
    }
    for (BaseMask m : pam.masks())
        masks.push_back(m);
    return masks;
}

/** Reverse a mask vector without complementing (PamFirst fwd stream). */
std::vector<BaseMask>
reversedMasks(const std::vector<BaseMask> &m)
{
    return {m.rbegin(), m.rend()};
}

} // namespace

std::vector<HammingSpec>
PatternSet::specsForStream(bool reversed) const
{
    std::vector<HammingSpec> specs;
    for (const Pattern &p : patterns)
        if (p.reversedStream == reversed)
            specs.push_back(p.spec);
    return specs;
}

bool
PatternSet::needsReversedStream() const
{
    return std::any_of(patterns.begin(), patterns.end(),
                       [](const Pattern &p) { return p.reversedStream; });
}

automata::HammingSpec
PatternSet::forwardSpec(uint32_t pattern_id) const
{
    CRISPR_ASSERT(pattern_id < patterns.size());
    const Pattern &p = patterns[pattern_id];
    if (!p.reversedStream)
        return p.spec;
    // Un-reverse: the pattern was built as reverse(siteMasks) for the
    // reversed stream; its forward-coordinate form reverses it back and
    // mirrors the mismatch window.
    HammingSpec spec = p.spec;
    const size_t len = spec.masks.size();
    std::reverse(spec.masks.begin(), spec.masks.end());
    const size_t hi = std::min(spec.mismatchHi, len);
    spec.mismatchLo = len - hi;
    spec.mismatchHi = len - p.spec.mismatchLo;
    return spec;
}

common::Expected<PatternSet>
tryBuildPatternSet(const std::vector<Guide> &guides, const PamSpec &pam,
                   int max_mismatches, bool both_strands,
                   Orientation orientation)
{
    using common::Error;
    using common::ErrorCode;
    if (guides.empty())
        return Error(ErrorCode::InvalidArgument, "no guides given");
    if (max_mismatches < 0)
        return Error(ErrorCode::InvalidArgument,
                     "negative mismatch budget");
    const size_t glen = guides.front().protospacer.size();
    for (const Guide &g : guides) {
        if (g.protospacer.size() != glen)
            return Error(ErrorCode::InvalidArgument,
                         strprintf("all guides must share one length "
                                   "(got %zu and %zu)",
                                   glen, g.protospacer.size()))
                .withContext("guide", g.name);
    }
    if (static_cast<size_t>(max_mismatches) > glen)
        return Error(ErrorCode::InvalidArgument,
                     "mismatch budget exceeds the guide length");

    PatternSet set;
    set.guideLength = glen;
    set.pamLength = pam.size();
    set.orientation = orientation;
    set.maxMismatches = max_mismatches;
    set.scoreWeights = scoreWeightTable(glen);

    for (uint32_t gi = 0; gi < guides.size(); ++gi) {
        const std::vector<BaseMask> site = siteMasks(guides[gi], pam);
        const size_t len = site.size();

        // Forward strand.
        {
            Pattern p;
            p.guideIndex = gi;
            p.strand = Strand::Forward;
            p.spec.maxMismatches = max_mismatches;
            p.spec.reportId = static_cast<uint32_t>(set.patterns.size());
            if (orientation == Orientation::SiteOrder) {
                p.reversedStream = false;
                p.spec.masks = site;
                p.spec.mismatchLo = 0;
                p.spec.mismatchHi = glen;
            } else {
                // PamFirst: reversed site on the reversed stream.
                p.reversedStream = true;
                p.spec.masks = reversedMasks(site);
                p.spec.mismatchLo = pam.size();
                p.spec.mismatchHi = len;
            }
            set.patterns.push_back(std::move(p));
        }

        // Reverse strand: the site read on the forward stream is the
        // reverse complement; its PAM leads in both orientations.
        if (both_strands) {
            Pattern p;
            p.guideIndex = gi;
            p.strand = Strand::Reverse;
            p.reversedStream = false;
            p.spec.masks = genome::reverseComplementMasks(site);
            p.spec.maxMismatches = max_mismatches;
            p.spec.mismatchLo = pam.size();
            p.spec.mismatchHi = len;
            p.spec.reportId = static_cast<uint32_t>(set.patterns.size());
            set.patterns.push_back(std::move(p));
        }
    }
    return set;
}

uint64_t
patternSetDigest(const PatternSet &set)
{
    common::BlobWriter w;
    w.u64(set.guideLength);
    w.u64(set.pamLength);
    w.u8(static_cast<uint8_t>(set.orientation));
    w.u32(static_cast<uint32_t>(set.maxMismatches));
    w.u32(static_cast<uint32_t>(set.scoreWeights.size()));
    for (double weight : set.scoreWeights)
        w.u64(std::bit_cast<uint64_t>(weight));
    w.u32(static_cast<uint32_t>(set.patterns.size()));
    for (const Pattern &p : set.patterns) {
        w.u32(p.guideIndex);
        w.u8(static_cast<uint8_t>(p.strand));
        w.u8(p.reversedStream ? 1 : 0);
        w.u32(static_cast<uint32_t>(p.spec.maxMismatches));
        w.u64(p.spec.mismatchLo);
        w.u64(p.spec.mismatchHi == SIZE_MAX ? UINT64_MAX
                                            : p.spec.mismatchHi);
        w.u32(p.spec.reportId);
        w.str(std::string_view(
            reinterpret_cast<const char *>(p.spec.masks.data()),
            p.spec.masks.size()));
    }
    return common::fnv1a64(w.buffer());
}

PatternSet
buildPatternSet(const std::vector<Guide> &guides, const PamSpec &pam,
                int max_mismatches, bool both_strands,
                Orientation orientation)
{
    return tryBuildPatternSet(guides, pam, max_mismatches, both_strands,
                              orientation)
        .valueOrThrow();
}

} // namespace crispr::core
