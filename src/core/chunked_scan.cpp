#include "core/chunked_scan.hpp"

#include <algorithm>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#include "common/faultpoints.hpp"
#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "genome/chunking.hpp"

namespace crispr::core {

using automata::ReportEvent;
using common::Error;
using common::ErrorCode;

namespace {

/** Translate an in-flight exception into a typed scan error. */
Error
scanError(std::exception_ptr ep, const char *engine_name)
{
    try {
        std::rethrow_exception(ep);
    } catch (const common::ErrorException &e) {
        return e.error();
    } catch (const FatalError &e) {
        return Error(ErrorCode::ScanFailed, e.what())
            .withContext("engine", engine_name);
    }
    // PanicError and friends are library bugs: let them propagate.
}

void
backoffSleep(unsigned attempt, const ChunkedScanOptions &options)
{
    double seconds = options.retryBackoffSeconds;
    for (unsigned i = 0; i < attempt; ++i)
        seconds *= 2.0;
    seconds = std::min(seconds, options.retryBackoffCapSeconds);
    if (seconds > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
}

} // namespace

common::Status
ChunkedScanner::validate(
    const Engine &engine,
    const std::shared_ptr<const CompiledPattern> &compiled,
    const ChunkedScanOptions &options)
{
    if (!engine.supportsChunkedScan())
        return Error(ErrorCode::UnsupportedEngine,
                     strprintf("engine %s does not support chunked "
                               "scanning (device-model engines need "
                               "the whole stream)",
                               engine.name()))
            .withContext("engine", engine.name());
    if (!compiled || compiled->kind != engine.kind())
        return Error(ErrorCode::InvalidArgument,
                     strprintf("ChunkedScanner needs a pattern "
                               "compiled for engine %s",
                               engine.name()))
            .withContext("engine", engine.name());
    size_t max_len = 0;
    for (const Pattern &p : compiled->set->patterns)
        max_len = std::max(max_len, p.spec.masks.size());
    const size_t overlap = max_len > 0 ? max_len - 1 : 0;
    if (options.chunkSize <= overlap)
        return Error(ErrorCode::InvalidArgument,
                     strprintf("scan chunk size (%zu) must exceed the "
                               "pattern length",
                               options.chunkSize));
    return {};
}

ChunkedScanner::ChunkedScanner(
    const Engine &engine,
    std::shared_ptr<const CompiledPattern> compiled,
    const ChunkedScanOptions &options)
    : engine_(engine), compiled_(std::move(compiled)), options_(options)
{
    validate(engine_, compiled_, options_).throwIfError();
    size_t max_len = 0;
    for (const Pattern &p : compiled_->set->patterns)
        max_len = std::max(max_len, p.spec.masks.size());
    overlap_ = max_len > 0 ? max_len - 1 : 0;
}

std::vector<ReportEvent>
ChunkedScanner::scanChunkLocal(std::span<const uint8_t> window,
                               size_t emit_offset,
                               std::atomic<uint64_t> &retries,
                               common::Histogram chunk_latency) const
{
    for (unsigned attempt = 0;; ++attempt) {
        try {
            common::TraceSpan span(options_.trace, "chunk.scan");
            if (common::faultpoints::shouldFail("chunk.scan"))
                throw common::ErrorException(
                    Error(ErrorCode::FaultInjected,
                          "injected chunk.scan fault")
                        .withContext("engine", engine_.name()));
            Stopwatch chunk_timer;
            ScanOptions scan_options;
            scan_options.simdTier = options_.simdTier;
            EngineRun run = engine_.scan(*compiled_, SequenceView(window),
                                         scan_options);
            chunk_latency.observe(chunk_timer.seconds());
            std::vector<ReportEvent> kept;
            kept.reserve(run.events.size());
            for (const ReportEvent &ev : run.events)
                if (ev.end >= emit_offset)
                    kept.push_back(ev);
            return kept;
        } catch (const FatalError &) {
            // Transient per-chunk failure: retry within the budget.
            if (attempt >= options_.scanRetries)
                throw;
            retries.fetch_add(1, std::memory_order_relaxed);
            backoffSleep(attempt, options_);
        }
    }
}

EngineRun
ChunkedScanner::makeRun(
    std::vector<ReportEvent> events, size_t chunks, unsigned threads,
    double wall_seconds, uint64_t bytes,
    const common::MetricsRegistry &scan_metrics) const
{
    EngineRun run;
    run.kind = engine_.kind();
    run.events = std::move(events);
    automata::normalizeEvents(run.events);
    run.timing.compileSeconds = compiled_->compileSeconds;
    run.timing.hostSeconds = wall_seconds;
    run.timing.kernelSeconds = wall_seconds;
    run.timing.totalSeconds = wall_seconds;
    run.metrics = compiled_->metrics;
    scan_metrics.mergeInto(run.metrics);
    run.metrics["scan.chunks"] = static_cast<double>(chunks);
    run.metrics["scan.threads"] = static_cast<double>(threads);
    run.metrics["scan.bytes"] = static_cast<double>(bytes);
    run.metrics["scan.events"] =
        static_cast<double>(run.events.size());
    if (wall_seconds > 0.0)
        run.metrics["scan.bytes_per_sec"] =
            static_cast<double>(bytes) / wall_seconds;
    run.metrics.emplace("events.dropped", 0.0);
    return run;
}

common::Expected<EngineRun>
ChunkedScanner::tryScan(const genome::Sequence &seq) const
{
    Stopwatch timer;
    // Resolve the emit range: {0, 0} means the whole sequence, any
    // other interval is clamped to it. The plan is laid out over the
    // range only; each chunk's lead extends below range_begin by up to
    // overlap_ so a site straddling the lower boundary is still seen,
    // while its emit zone starts at the boundary — the per-chunk seam
    // rule applied to the shard seam.
    const uint64_t n = seq.size();
    uint64_t range_begin = 0;
    uint64_t range_end = n;
    if (!options_.scanRange.whole()) {
        range_begin = std::min<uint64_t>(options_.scanRange.begin, n);
        range_end = std::min<uint64_t>(
            std::max(options_.scanRange.end, range_begin), n);
    }
    const auto plan = genome::planScanChunks(
        range_end - range_begin, options_.chunkSize, overlap_);
    const unsigned threads = genome::resolveThreads(options_.threads);

    common::MetricsRegistry scan_metrics;
    common::Histogram chunk_latency =
        scan_metrics.histogram("scan.chunk_seconds");
    const unsigned lanes =
        plan.empty() ? 1
                     : static_cast<unsigned>(
                           std::min<size_t>(threads, plan.size()));
    std::vector<std::vector<ReportEvent>> lane_events(lanes);
    std::atomic<size_t> done{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<bool> expired{false};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto body = [&](size_t w, unsigned lane) {
        if (failed.load(std::memory_order_relaxed))
            return false;
        if (options_.deadline.expired()) {
            expired.store(true, std::memory_order_relaxed);
            return false;
        }
        const genome::ScanChunk &c = plan[w];
        // Globalize the range-local plan; the first chunk's lead is
        // re-derived from the global emit position so it can reach
        // below range_begin (the seam overlap).
        const uint64_t emit = range_begin + c.emitFrom;
        const uint64_t lead = emit >= overlap_ ? emit - overlap_ : 0;
        const uint64_t chunk_end = range_begin + c.end;
        try {
            auto kept = scanChunkLocal(
                std::span<const uint8_t>(seq.data() + lead,
                                         chunk_end - lead),
                emit - lead, retries, chunk_latency);
            std::vector<ReportEvent> &local = lane_events[lane];
            for (const ReportEvent &ev : kept)
                local.push_back(
                    ReportEvent{ev.reportId, ev.end + lead});
            done.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error)
                first_error = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
            return false;
        }
        return true;
    };

    if (lanes <= 1) {
        // Serial bypass: threads == 1 never touches the pool, so the
        // paper's single-core measurements stay executor-free.
        for (size_t w = 0; w < plan.size(); ++w)
            if (!body(w, 0))
                break;
    } else if (options_.spawnThreads) {
        // Legacy spawn-per-scan path: the bench baseline only.
        std::atomic<size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(lanes);
        for (unsigned t = 0; t < lanes; ++t)
            pool.emplace_back([&, t] {
                for (;;) {
                    const size_t w = next.fetch_add(1);
                    if (w >= plan.size() || !body(w, t))
                        break;
                }
            });
        for (auto &t : pool)
            t.join();
    } else {
        common::Executor &exec = options_.executor
                                     ? *options_.executor
                                     : common::Executor::shared();
        exec.forIndices(
            plan.size(), lanes,
            common::TaskOptions{options_.deadline, options_.trace},
            body);
    }
    if (first_error)
        return scanError(first_error, engine_.name());

    std::vector<ReportEvent> events;
    for (std::vector<ReportEvent> &local : lane_events)
        events.insert(events.end(), local.begin(), local.end());

    EngineRun run = makeRun(std::move(events), plan.size(), threads,
                            timer.seconds(), range_end - range_begin,
                            scan_metrics);
    const size_t scanned = done.load();
    run.metrics["scan.chunks_skipped"] =
        static_cast<double>(plan.size() - scanned);
    run.metrics["scan.retries"] = static_cast<double>(retries.load());
    // A scan that stopped early distinguishes why: cancellation is not
    // a timeout (a Deadline can be both manual and timed).
    run.metrics["search.timed_out"] =
        expired.load() && options_.deadline.timedOut() ? 1.0 : 0.0;
    run.metrics["search.cancelled"] =
        expired.load() && options_.deadline.cancelled() ? 1.0 : 0.0;
    return run;
}

common::Expected<EngineRun>
ChunkedScanner::tryScanStream(genome::FastaStreamReader &reader,
                              const ChunkObserver &observer) const
{
    Stopwatch timer;
    const unsigned threads = genome::resolveThreads(options_.threads);
    common::Executor &exec = options_.executor
                                 ? *options_.executor
                                 : common::Executor::shared();
    // threads == 1 defers every chunk inline; the legacy async path
    // stays only as the bench_service spawn-per-scan baseline.
    const bool pooled = threads > 1 && !options_.spawnThreads;

    common::MetricsRegistry scan_metrics;
    common::Histogram chunk_latency =
        scan_metrics.histogram("scan.chunk_seconds");

    struct Pending
    {
        std::shared_ptr<genome::Sequence> buffer;
        uint64_t bufferStart;
        std::future<std::vector<ReportEvent>> events;
    };
    std::deque<Pending> in_flight;
    std::vector<ReportEvent> events;
    std::atomic<uint64_t> retries{0};
    size_t chunks = 0;
    bool expired = false;
    bool failed = false;
    Error error;

    auto drain_one = [&] {
        Pending p = std::move(in_flight.front());
        in_flight.pop_front();
        std::vector<ReportEvent> local;
        try {
            if (pooled)
                exec.wait(p.events); // help: no parked pool worker
            local = p.events.get();
        } catch (...) {
            error = scanError(std::current_exception(),
                              engine_.name());
            failed = true;
            return;
        }
        if (observer)
            observer(ChunkScanView{*p.buffer, p.bufferStart, local});
        for (const ReportEvent &ev : local)
            events.push_back(
                ReportEvent{ev.reportId, ev.end + p.bufferStart});
    };

    std::vector<uint8_t> carry;
    std::vector<uint8_t> incoming;
    uint64_t offset = 0; // global offset of the next decoded code
    while (!failed) {
        if (options_.deadline.expired()) {
            expired = true;
            break;
        }
        common::TraceSpan parse_span(options_.trace, "parse");
        auto more = reader.tryNext(options_.chunkSize, incoming);
        parse_span.finish();
        if (!more.ok()) {
            error = more.error();
            failed = true;
            break;
        }
        if (!more.value())
            break;
        auto buffer = std::make_shared<genome::Sequence>();
        {
            std::vector<uint8_t> codes;
            codes.reserve(carry.size() + incoming.size());
            codes.insert(codes.end(), carry.begin(), carry.end());
            codes.insert(codes.end(), incoming.begin(),
                         incoming.end());
            *buffer = genome::Sequence(std::move(codes));
        }
        const uint64_t buffer_start = offset - carry.size();
        const size_t emit_offset = carry.size();
        offset += incoming.size();

        // Refresh the carry from the buffer's tail for the next chunk.
        const size_t keep = std::min(overlap_, buffer->size());
        carry.assign(buffer->data() + (buffer->size() - keep),
                     buffer->data() + buffer->size());

        auto task = [this, buffer, emit_offset, &retries,
                     chunk_latency] {
            return scanChunkLocal(
                std::span<const uint8_t>(buffer->data(),
                                         buffer->size()),
                emit_offset, retries, chunk_latency);
        };
        in_flight.push_back(Pending{
            buffer, buffer_start,
            pooled ? exec.submit(task,
                                 common::TaskOptions{
                                     {}, options_.trace})
            : threads <= 1
                ? std::async(std::launch::deferred, task)
                : std::async(std::launch::async, task)});
        ++chunks;
        while (!failed && in_flight.size() >= std::max(1u, threads))
            drain_one();
    }
    while (!failed && !in_flight.empty())
        drain_one();
    // Join any scans still in flight after a failure before the
    // capturing lambdas go out of scope (async future dtors block,
    // but pool futures do not — wait for them explicitly).
    while (!in_flight.empty()) {
        Pending p = std::move(in_flight.front());
        in_flight.pop_front();
        try {
            if (pooled)
                exec.wait(p.events);
            p.events.get();
        } catch (...) {
            // Already failed; the first error wins.
        }
    }
    if (failed)
        return error;

    EngineRun run = makeRun(std::move(events), chunks, threads,
                            timer.seconds(), offset, scan_metrics);
    run.metrics["scan.retries"] = static_cast<double>(retries.load());
    run.metrics["search.timed_out"] =
        expired && options_.deadline.timedOut() ? 1.0 : 0.0;
    run.metrics["search.cancelled"] =
        expired && options_.deadline.cancelled() ? 1.0 : 0.0;
    return run;
}

EngineRun
ChunkedScanner::scan(const genome::Sequence &seq) const
{
    return tryScan(seq).valueOrThrow();
}

EngineRun
ChunkedScanner::scanStream(genome::FastaStreamReader &reader,
                           const ChunkObserver &observer) const
{
    return tryScanStream(reader, observer).valueOrThrow();
}

} // namespace crispr::core
