#include "core/chunked_scan.hpp"

#include <atomic>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "genome/chunking.hpp"

namespace crispr::core {

using automata::ReportEvent;

ChunkedScanner::ChunkedScanner(
    const Engine &engine,
    std::shared_ptr<const CompiledPattern> compiled,
    const ChunkedScanOptions &options)
    : engine_(engine), compiled_(std::move(compiled)), options_(options)
{
    if (!engine_.supportsChunkedScan())
        fatal("engine %s does not support chunked scanning "
              "(device-model engines need the whole stream)",
              engine_.name());
    if (!compiled_ || compiled_->kind != engine_.kind())
        fatal("ChunkedScanner needs a pattern compiled for engine %s",
              engine_.name());
    size_t max_len = 0;
    for (const Pattern &p : compiled_->set->patterns)
        max_len = std::max(max_len, p.spec.masks.size());
    overlap_ = max_len > 0 ? max_len - 1 : 0;
    if (options_.chunkSize <= overlap_)
        fatal("scan chunk size (%zu) must exceed the pattern length",
              options_.chunkSize);
}

std::vector<ReportEvent>
ChunkedScanner::scanChunkLocal(std::span<const uint8_t> window,
                               size_t emit_offset) const
{
    EngineRun run = engine_.scan(*compiled_, SequenceView(window));
    std::vector<ReportEvent> kept;
    kept.reserve(run.events.size());
    for (const ReportEvent &ev : run.events)
        if (ev.end >= emit_offset)
            kept.push_back(ev);
    return kept;
}

EngineRun
ChunkedScanner::makeRun(std::vector<ReportEvent> events, size_t chunks,
                        unsigned threads, double wall_seconds) const
{
    EngineRun run;
    run.kind = engine_.kind();
    run.events = std::move(events);
    automata::normalizeEvents(run.events);
    run.timing.compileSeconds = compiled_->compileSeconds;
    run.timing.hostSeconds = wall_seconds;
    run.timing.kernelSeconds = wall_seconds;
    run.timing.totalSeconds = wall_seconds;
    run.metrics = compiled_->metrics;
    run.metrics["scan.chunks"] = static_cast<double>(chunks);
    run.metrics["scan.threads"] = static_cast<double>(threads);
    run.metrics["events"] = static_cast<double>(run.events.size());
    run.metrics.emplace("events.dropped", 0.0);
    return run;
}

EngineRun
ChunkedScanner::scan(const genome::Sequence &seq) const
{
    Stopwatch timer;
    const auto plan = genome::planScanChunks(
        seq.size(), options_.chunkSize, overlap_);
    const unsigned threads = genome::resolveThreads(options_.threads);

    std::vector<ReportEvent> events;
    std::mutex events_mutex;
    std::atomic<size_t> next{0};

    auto worker = [&] {
        std::vector<ReportEvent> local;
        for (;;) {
            const size_t w = next.fetch_add(1);
            if (w >= plan.size())
                break;
            const genome::ScanChunk &c = plan[w];
            auto kept = scanChunkLocal(
                std::span<const uint8_t>(seq.data() + c.leadFrom,
                                         c.end - c.leadFrom),
                c.emitFrom - c.leadFrom);
            for (const ReportEvent &ev : kept)
                local.push_back(ReportEvent{ev.reportId,
                                            ev.end + c.leadFrom});
        }
        std::lock_guard<std::mutex> lock(events_mutex);
        events.insert(events.end(), local.begin(), local.end());
    };

    const unsigned spawn = static_cast<unsigned>(
        std::min<size_t>(threads, plan.size()));
    if (spawn <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(spawn);
        for (unsigned t = 0; t < spawn; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    return makeRun(std::move(events), plan.size(), threads,
                   timer.seconds());
}

EngineRun
ChunkedScanner::scanStream(genome::FastaStreamReader &reader,
                           const ChunkObserver &observer) const
{
    Stopwatch timer;
    const unsigned threads = genome::resolveThreads(options_.threads);

    struct Pending
    {
        std::shared_ptr<genome::Sequence> buffer;
        uint64_t bufferStart;
        std::future<std::vector<ReportEvent>> events;
    };
    std::deque<Pending> in_flight;
    std::vector<ReportEvent> events;
    size_t chunks = 0;

    auto drain_one = [&] {
        Pending p = std::move(in_flight.front());
        in_flight.pop_front();
        std::vector<ReportEvent> local = p.events.get();
        if (observer)
            observer(ChunkScanView{*p.buffer, p.bufferStart, local});
        for (const ReportEvent &ev : local)
            events.push_back(
                ReportEvent{ev.reportId, ev.end + p.bufferStart});
    };

    std::vector<uint8_t> carry;
    std::vector<uint8_t> incoming;
    uint64_t offset = 0; // global offset of the next decoded code
    while (reader.next(options_.chunkSize, incoming)) {
        auto buffer = std::make_shared<genome::Sequence>();
        {
            std::vector<uint8_t> codes;
            codes.reserve(carry.size() + incoming.size());
            codes.insert(codes.end(), carry.begin(), carry.end());
            codes.insert(codes.end(), incoming.begin(),
                         incoming.end());
            *buffer = genome::Sequence(std::move(codes));
        }
        const uint64_t buffer_start = offset - carry.size();
        const size_t emit_offset = carry.size();
        offset += incoming.size();

        // Refresh the carry from the buffer's tail for the next chunk.
        const size_t keep = std::min(overlap_, buffer->size());
        carry.assign(buffer->data() + (buffer->size() - keep),
                     buffer->data() + buffer->size());

        auto task = [this, buffer, emit_offset] {
            return scanChunkLocal(
                std::span<const uint8_t>(buffer->data(),
                                         buffer->size()),
                emit_offset);
        };
        in_flight.push_back(Pending{
            buffer, buffer_start,
            threads <= 1
                ? std::async(std::launch::deferred, task)
                : std::async(std::launch::async, task)});
        ++chunks;
        while (in_flight.size() >= std::max(1u, threads))
            drain_one();
    }
    while (!in_flight.empty())
        drain_one();

    return makeRun(std::move(events), chunks, threads, timer.seconds());
}

} // namespace crispr::core
