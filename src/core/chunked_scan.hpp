/**
 * @file
 * Engine-agnostic chunked scanning: drives any chunk-capable (CPU)
 * engine adapter over a genome in fixed-size chunks — in memory across
 * a thread pool, or streamed from a FASTA reader so multi-gigabyte
 * references never need full residency. Each chunk re-scans enough
 * leading overlap that no seam-straddling window is lost; an event is
 * emitted by exactly the chunk whose emit zone contains its end index,
 * so results are bit-identical to a single whole-genome scan (tested
 * for every CPU engine). This generalises the former HScan-only
 * hscan::parallelScan to the whole registry.
 *
 * Fault tolerance (see DESIGN.md "Failure model"): the per-chunk
 * granularity is also the recovery granularity. A Deadline in the
 * options is polled before each chunk is dispatched, so an expired or
 * cancelled scan stops early and returns the partial events with
 * `search.timed_out` = 1; transient chunk failures are retried with
 * capped exponential backoff (`scan.retries` metric); and the `try*`
 * entry points return typed errors instead of throwing.
 */

#ifndef CRISPR_CORE_CHUNKED_SCAN_HPP_
#define CRISPR_CORE_CHUNKED_SCAN_HPP_

#include <atomic>
#include <functional>
#include <memory>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/executor.hpp"
#include "common/trace.hpp"
#include "core/engine.hpp"
#include "core/options.hpp"
#include "genome/fasta_stream.hpp"

namespace crispr::core {

/**
 * Chunked-scan options: exactly the shared execution-tuning layer
 * (core/options.hpp) — chunk geometry, threads, SIMD tier, deadline,
 * retry budget, executor, trace, and the optional emit ScanRange. The
 * fields used to be re-declared here; SearchSession now hands its
 * RuntimeOptions straight through via the common base.
 */
struct ChunkedScanOptions : ExecutionOptions
{
};

/**
 * Per-chunk observation, delivered in stream order. `buffer` holds the
 * chunk including its leading overlap, so every emitted event's full
 * match window is resident — the hook streaming consumers use to
 * verify hits without the whole genome in memory.
 */
struct ChunkScanView
{
    const genome::Sequence &buffer; //!< overlap + emit zone
    uint64_t bufferStart;           //!< global offset of buffer[0]
    /** Buffer-local events of this chunk's emit zone only. */
    const std::vector<automata::ReportEvent> &events;
};

using ChunkObserver = std::function<void(const ChunkScanView &)>;

/** The chunked scan pipeline over one compiled pattern. */
class ChunkedScanner
{
  public:
    /**
     * Whether the (engine, compiled, options) triple can be chunk
     * scanned: the engine must be chunk-capable, the pattern compiled
     * for it, and the chunk size larger than the pattern length.
     * Callers on the request path check this before constructing.
     */
    static common::Status
    validate(const Engine &engine,
             const std::shared_ptr<const CompiledPattern> &compiled,
             const ChunkedScanOptions &options);

    /**
     * @param engine a chunk-capable adapter (ErrorException — a
     * FatalError — when validate() would fail);
     * @param compiled its compiled pattern, shared across chunks.
     */
    ChunkedScanner(const Engine &engine,
                   std::shared_ptr<const CompiledPattern> compiled,
                   const ChunkedScanOptions &options = {});

    /**
     * Scan an in-memory genome chunk-by-chunk across the thread pool.
     * Events are global-coordinate, normalised, and bit-identical to
     * engine.scan() over the whole sequence — unless the deadline
     * expires, in which case the run carries the partial events with
     * `search.timed_out` = 1 and `scan.chunks_skipped` > 0. A chunk
     * that still fails after the retry budget returns ScanFailed.
     *
     * When `options.scanRange` is a non-whole interval, only events
     * ending inside [begin, end) (clamped to the sequence) are
     * emitted; the scan re-reads up to overlap() codes before `begin`
     * so boundary-straddling sites are still matched. The union of
     * disjoint ranges covering the sequence is bit-identical to one
     * whole-sequence scan — the shard coordinator's merge contract.
     */
    common::Expected<EngineRun>
    tryScan(const genome::Sequence &seq) const;

    /**
     * Scan a FASTA stream without materialising the reference: chunks
     * are decoded, scanned (overlapping scans run on the thread pool),
     * and discarded. `observer`, when set, sees every chunk with its
     * events in stream order while the chunk is still resident.
     * Parse failures surface as ParseError; a scan that fails after
     * retries as ScanFailed (the stream is part-consumed either way).
     */
    common::Expected<EngineRun>
    tryScanStream(genome::FastaStreamReader &reader,
                  const ChunkObserver &observer = {}) const;

    /** Throwing wrappers over tryScan / tryScanStream. */
    EngineRun scan(const genome::Sequence &seq) const;
    EngineRun scanStream(genome::FastaStreamReader &reader,
                         const ChunkObserver &observer = {}) const;

    /** Leading re-scan length (longest pattern - 1). */
    size_t overlap() const { return overlap_; }

  private:
    std::vector<automata::ReportEvent>
    scanChunkLocal(std::span<const uint8_t> window, size_t emit_offset,
                   std::atomic<uint64_t> &retries,
                   common::Histogram chunk_latency) const;
    EngineRun makeRun(std::vector<automata::ReportEvent> events,
                      size_t chunks, unsigned threads,
                      double wall_seconds, uint64_t bytes,
                      const common::MetricsRegistry &scan_metrics)
        const;

    const Engine &engine_;
    std::shared_ptr<const CompiledPattern> compiled_;
    ChunkedScanOptions options_;
    size_t overlap_ = 0;
};

} // namespace crispr::core

#endif // CRISPR_CORE_CHUNKED_SCAN_HPP_
