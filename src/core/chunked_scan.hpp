/**
 * @file
 * Engine-agnostic chunked scanning: drives any chunk-capable (CPU)
 * engine adapter over a genome in fixed-size chunks — in memory across
 * a thread pool, or streamed from a FASTA reader so multi-gigabyte
 * references never need full residency. Each chunk re-scans enough
 * leading overlap that no seam-straddling window is lost; an event is
 * emitted by exactly the chunk whose emit zone contains its end index,
 * so results are bit-identical to a single whole-genome scan (tested
 * for every CPU engine). This generalises the former HScan-only
 * hscan::parallelScan to the whole registry.
 */

#ifndef CRISPR_CORE_CHUNKED_SCAN_HPP_
#define CRISPR_CORE_CHUNKED_SCAN_HPP_

#include <functional>
#include <memory>

#include "core/engine.hpp"
#include "genome/fasta_stream.hpp"

namespace crispr::core {

/** Chunked-scan options. */
struct ChunkedScanOptions
{
    /** Emit-zone size per chunk (must exceed the site length). */
    size_t chunkSize = 4 << 20;
    /** Worker threads; 1 = serial, 0 = hardware_concurrency. */
    unsigned threads = 1;
};

/**
 * Per-chunk observation, delivered in stream order. `buffer` holds the
 * chunk including its leading overlap, so every emitted event's full
 * match window is resident — the hook streaming consumers use to
 * verify hits without the whole genome in memory.
 */
struct ChunkScanView
{
    const genome::Sequence &buffer; //!< overlap + emit zone
    uint64_t bufferStart;           //!< global offset of buffer[0]
    /** Buffer-local events of this chunk's emit zone only. */
    const std::vector<automata::ReportEvent> &events;
};

using ChunkObserver = std::function<void(const ChunkScanView &)>;

/** The chunked scan pipeline over one compiled pattern. */
class ChunkedScanner
{
  public:
    /**
     * @param engine a chunk-capable adapter (fatal otherwise);
     * @param compiled its compiled pattern, shared across chunks.
     */
    ChunkedScanner(const Engine &engine,
                   std::shared_ptr<const CompiledPattern> compiled,
                   const ChunkedScanOptions &options = {});

    /**
     * Scan an in-memory genome chunk-by-chunk across the thread pool.
     * Events are global-coordinate, normalised, and bit-identical to
     * engine.scan() over the whole sequence.
     */
    EngineRun scan(const genome::Sequence &seq) const;

    /**
     * Scan a FASTA stream without materialising the reference: chunks
     * are decoded, scanned (overlapping scans run on the thread pool),
     * and discarded. `observer`, when set, sees every chunk with its
     * events in stream order while the chunk is still resident.
     */
    EngineRun scanStream(genome::FastaStreamReader &reader,
                         const ChunkObserver &observer = {}) const;

    /** Leading re-scan length (longest pattern - 1). */
    size_t overlap() const { return overlap_; }

  private:
    std::vector<automata::ReportEvent>
    scanChunkLocal(std::span<const uint8_t> window,
                   size_t emit_offset) const;
    EngineRun makeRun(std::vector<automata::ReportEvent> events,
                      size_t chunks, unsigned threads,
                      double wall_seconds) const;

    const Engine &engine_;
    std::shared_ptr<const CompiledPattern> compiled_;
    ChunkedScanOptions options_;
    size_t overlap_ = 0;
};

} // namespace crispr::core

#endif // CRISPR_CORE_CHUNKED_SCAN_HPP_
