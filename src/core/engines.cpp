/**
 * @file
 * Legacy free-function surface over the engine registry. No dispatch
 * lives here any more: engineName / allEngines / requiredOrientation /
 * runEngine all delegate to EngineRegistry, and the per-platform
 * adapters live in src/core/engines/.
 */

#include "core/engines.hpp"

#include <memory>
#include <utility>

#include "core/chunked_scan.hpp"
#include "core/engine_registry.hpp"

namespace crispr::core {

const char *
engineName(EngineKind kind)
{
    return EngineRegistry::instance().engine(kind).name();
}

std::vector<EngineKind>
allEngines()
{
    return EngineRegistry::instance().kinds();
}

Orientation
requiredOrientation(EngineKind kind)
{
    return EngineRegistry::instance().engine(kind).requiredOrientation();
}

EngineRun
runEngine(EngineKind kind, const genome::Sequence &genome,
          const PatternSet &set, const EngineParams &params)
{
    const Engine &engine = EngineRegistry::instance().engine(kind);

    // Back-compat: hscanThreads != 1 used to route the HScan kinds
    // through hscan::parallelScan; the chunked pipeline is its
    // registry-wide replacement.
    const bool hscan_kind = kind == EngineKind::HscanAuto ||
                            kind == EngineKind::HscanDfa ||
                            kind == EngineKind::HscanBitParallel;
    if (hscan_kind && params.hscanThreads != 1) {
        auto compiled = std::make_shared<const CompiledPattern>(
            engine.compile(set, params));
        ChunkedScanOptions opts;
        opts.threads = params.hscanThreads;
        EngineRun run =
            ChunkedScanner(engine, compiled, opts).scan(genome);
        run.metrics["hscan.threads"] =
            static_cast<double>(params.hscanThreads);
        return run;
    }

    CompiledPattern compiled = engine.compile(set, params);
    return engine.scan(compiled, SequenceView(genome));
}

} // namespace crispr::core
