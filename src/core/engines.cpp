#include "core/engines.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "automata/builders.hpp"
#include "baselines/brute.hpp"
#include "fpga/fabric.hpp"
#include "hscan/multipattern.hpp"
#include "hscan/parallel.hpp"
#include "hscan/prefilter.hpp"

namespace crispr::core {

using automata::HammingSpec;
using automata::Nfa;
using automata::ReportEvent;

const char *
engineName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Brute:            return "brute-force";
      case EngineKind::Reference:        return "nfa-reference";
      case EngineKind::HscanAuto:        return "hscan";
      case EngineKind::HscanDfa:         return "hscan-dfa";
      case EngineKind::HscanBitParallel: return "hscan-bitparallel";
      case EngineKind::HscanPrefilter:   return "hscan-prefilter";
      case EngineKind::GpuInfant2:       return "infant2-gpu";
      case EngineKind::Fpga:             return "fpga";
      case EngineKind::Ap:               return "ap";
      case EngineKind::ApCounter:        return "ap-counter";
      case EngineKind::CasOffinder:      return "casoffinder";
      case EngineKind::CasOt:            return "casot";
      case EngineKind::CasOtIndexed:     return "casot-indexed";
    }
    return "unknown";
}

std::vector<EngineKind>
allEngines()
{
    return {EngineKind::Brute,        EngineKind::Reference,
            EngineKind::HscanAuto,    EngineKind::HscanDfa,
            EngineKind::HscanBitParallel, EngineKind::HscanPrefilter,
            EngineKind::GpuInfant2,   EngineKind::Fpga,
            EngineKind::Ap,           EngineKind::ApCounter,
            EngineKind::CasOffinder,  EngineKind::CasOt,
            EngineKind::CasOtIndexed};
}

Orientation
requiredOrientation(EngineKind kind)
{
    return kind == EngineKind::ApCounter ? Orientation::PamFirst
                                         : Orientation::SiteOrder;
}

namespace {

/** Reverse (not complement) of a genome, for PamFirst second passes. */
genome::Sequence
reversedStream(const genome::Sequence &g)
{
    std::vector<uint8_t> codes(g.size());
    for (size_t i = 0; i < g.size(); ++i)
        codes[g.size() - 1 - i] = g[i];
    return genome::Sequence(std::move(codes));
}

/** Union mismatch-matrix NFA over a spec list. */
Nfa
unionNfaOf(const std::vector<HammingSpec> &specs)
{
    std::vector<Nfa> nfas;
    nfas.reserve(specs.size());
    for (const HammingSpec &s : specs)
        nfas.push_back(automata::buildHammingNfa(s));
    return automata::unionNfas(nfas);
}

/**
 * Functionally-equivalent fast event source (HScan auto path), used by
 * the device engines when the input exceeds the full-simulation limit.
 */
std::vector<ReportEvent>
fastEvents(const genome::Sequence &stream,
           const std::vector<HammingSpec> &specs)
{
    if (specs.empty())
        return {};
    hscan::Database db = hscan::Database::compile(specs);
    hscan::Scanner scanner(db);
    auto events = scanner.scanAll(stream);
    automata::normalizeEvents(events);
    return events;
}

/** Symbol histogram of a stream. */
void
histogramOf(const genome::Sequence &g, uint64_t *hist)
{
    std::fill(hist, hist + genome::kNumSymbols, 0);
    for (size_t i = 0; i < g.size(); ++i)
        ++hist[g[i]];
}

void
requireOrientation(EngineKind kind, const PatternSet &set)
{
    if (set.orientation != requiredOrientation(kind))
        fatal("engine %s requires a %s pattern set", engineName(kind),
              requiredOrientation(kind) == Orientation::PamFirst
                  ? "PamFirst"
                  : "SiteOrder");
}

EngineRun
runBrute(const genome::Sequence &g, const PatternSet &set)
{
    EngineRun run;
    Stopwatch timer;
    run.events = baselines::bruteForceScan(g, set.specsForStream(false));
    run.timing.hostSeconds = timer.seconds();
    run.timing.kernelSeconds = run.timing.hostSeconds;
    run.timing.totalSeconds = run.timing.hostSeconds;
    return run;
}

EngineRun
runReference(const genome::Sequence &g, const PatternSet &set)
{
    EngineRun run;
    Stopwatch compile_timer;
    Nfa nfa = unionNfaOf(set.specsForStream(false));
    run.timing.compileSeconds = compile_timer.seconds();
    run.metrics["nfa.states"] = static_cast<double>(nfa.size());
    run.metrics["nfa.edges"] = static_cast<double>(nfa.edgeCount());

    Stopwatch timer;
    automata::NfaInterpreter interp(nfa);
    run.events = interp.scanAll(g);
    automata::normalizeEvents(run.events);
    run.timing.hostSeconds = timer.seconds();
    run.timing.kernelSeconds = run.timing.hostSeconds;
    run.timing.totalSeconds = run.timing.hostSeconds;
    run.metrics["nfa.activations"] =
        static_cast<double>(interp.activationCount());
    return run;
}

EngineRun
runHscan(EngineKind kind, const genome::Sequence &g, const PatternSet &set,
         const EngineParams &params)
{
    hscan::DatabaseOptions opts = params.hscanOpts;
    if (kind == EngineKind::HscanDfa)
        opts.mode = hscan::ScanMode::Dfa;
    else if (kind == EngineKind::HscanBitParallel)
        opts.mode = hscan::ScanMode::BitParallel;

    EngineRun run;
    Stopwatch compile_timer;
    hscan::Database db =
        hscan::Database::compile(set.specsForStream(false), opts);
    run.timing.compileSeconds = compile_timer.seconds();
    run.notes = db.info();

    Stopwatch timer;
    if (params.hscanThreads == 1) {
        hscan::Scanner scanner(db);
        run.events = scanner.scanAll(g);
    } else {
        hscan::ParallelOptions popts;
        popts.threads = params.hscanThreads;
        run.events = hscan::parallelScan(db, g, popts);
        run.metrics["hscan.threads"] =
            static_cast<double>(params.hscanThreads);
    }
    run.timing.hostSeconds = timer.seconds();
    automata::normalizeEvents(run.events);
    run.timing.kernelSeconds = run.timing.hostSeconds;
    run.timing.totalSeconds = run.timing.hostSeconds;
    run.metrics["hscan.dfa_path"] =
        db.effectiveMode() == hscan::ScanMode::Dfa ? 1.0 : 0.0;
    if (db.dfaPrototype()) {
        run.metrics["hscan.dfa_states"] =
            static_cast<double>(db.dfaPrototype()->dfa().size());
        run.metrics["hscan.dfa_bytes"] =
            static_cast<double>(db.dfaPrototype()->dfa().tableBytes());
    }
    return run;
}

EngineRun
runHscanPrefilter(const genome::Sequence &g, const PatternSet &set)
{
    EngineRun run;
    Stopwatch compile_timer;
    hscan::PrefilterMatcher matcher(set.specsForStream(false));
    run.timing.compileSeconds = compile_timer.seconds();

    Stopwatch timer;
    run.events = matcher.scanAll(g);
    run.timing.hostSeconds = timer.seconds();
    run.timing.kernelSeconds = run.timing.hostSeconds;
    run.timing.totalSeconds = run.timing.hostSeconds;
    run.metrics["prefilter.anchors_hit"] =
        static_cast<double>(matcher.stats().anchorsHit);
    run.metrics["prefilter.verifications"] =
        static_cast<double>(matcher.stats().verifications);
    run.metrics["prefilter.shapes"] =
        static_cast<double>(matcher.shapeCount());
    return run;
}

EngineRun
runInfant2(const genome::Sequence &g, const PatternSet &set,
           const EngineParams &params)
{
    EngineRun run;
    Stopwatch compile_timer;
    Nfa nfa = unionNfaOf(set.specsForStream(false));
    const size_t overlap = set.siteLength() + 2;
    gpu::Infant2Engine engine(nfa, params.gpuModel, params.gpuChunk,
                              overlap);
    run.timing.compileSeconds = compile_timer.seconds();
    run.metrics["gpu.transitions"] =
        static_cast<double>(engine.graph().totalTransitions());
    run.metrics["gpu.max_list"] =
        static_cast<double>(engine.graph().maxListLength());

    gpu::Infant2Time time;
    if (g.size() <= params.fullSimSymbolLimit) {
        Stopwatch timer;
        run.events = engine.scanAll(g);
        run.timing.hostSeconds = timer.seconds();
        time = engine.estimateTime();
        run.metrics["gpu.transitions_fetched"] =
            static_cast<double>(engine.work().transitionsFetched);
        run.metrics["gpu.transitions_taken"] =
            static_cast<double>(engine.work().transitionsTaken);
    } else {
        Stopwatch timer;
        run.events = fastEvents(g, set.specsForStream(false));
        run.timing.hostSeconds = timer.seconds();
        uint64_t hist[genome::kNumSymbols];
        histogramOf(g, hist);
        gpu::Infant2Work work = gpu::workFromHistogram(
            engine.graph(), hist, g.size(), params.gpuChunk, overlap);
        work.reportEvents = run.events.size();
        time = gpu::estimateInfant2Time(work, engine.graph(), g.size(),
                                        params.gpuModel);
        run.metrics["gpu.transitions_fetched"] =
            static_cast<double>(work.transitionsFetched);
        run.notes = "analytic timing (genome over full-sim limit)";
    }
    run.timing.modelKernelSeconds = time.kernelSeconds;
    run.timing.modelTotalSeconds = time.totalSeconds();
    run.timing.kernelSeconds = time.kernelSeconds;
    run.timing.totalSeconds = time.totalSeconds();
    return run;
}

EngineRun
runFpga(const genome::Sequence &g, const PatternSet &set,
        const EngineParams &params)
{
    EngineRun run;
    Stopwatch compile_timer;
    Nfa nfa = unionNfaOf(set.specsForStream(false));
    fpga::FpgaFabric fabric(std::move(nfa), params.fpgaSpec);
    run.timing.compileSeconds = compile_timer.seconds();

    const auto &res = fabric.resources();
    run.metrics["fpga.luts"] = static_cast<double>(res.luts);
    run.metrics["fpga.ffs"] = static_cast<double>(res.flipflops);
    run.metrics["fpga.clock_mhz"] = res.clockHz / 1e6;
    run.metrics["fpga.passes"] = res.passes;
    run.metrics["fpga.lut_util"] = res.lutUtilization;

    Stopwatch timer;
    if (g.size() <= params.fullSimSymbolLimit) {
        run.events = fabric.scanAll(g);
    } else {
        run.events = fastEvents(g, set.specsForStream(false));
        run.notes = "analytic timing (genome over full-sim limit)";
    }
    run.timing.hostSeconds = timer.seconds();

    fpga::FpgaTimeBreakdown t = fabric.timeBreakdown(g.size());
    run.timing.modelKernelSeconds = t.kernelSeconds;
    run.timing.modelTotalSeconds = t.totalSeconds();
    run.timing.kernelSeconds = t.kernelSeconds;
    run.timing.totalSeconds = t.totalSeconds();
    return run;
}

EngineRun
runAp(const genome::Sequence &g, const PatternSet &set,
      const EngineParams &params)
{
    EngineRun run;
    Stopwatch compile_timer;
    const auto specs = set.specsForStream(false);

    // Placement of per-pattern automata (capacity model granularity).
    std::vector<ap::MachineStats> machine_stats;
    machine_stats.reserve(specs.size());
    for (const HammingSpec &s : specs) {
        ap::MachineStats ms;
        ms.stes = automata::hammingNfaStates(
            s.masks.size(), s.maxMismatches, s.mismatchLo, s.mismatchHi);
        machine_stats.push_back(ms);
    }
    ap::Placement placement =
        ap::placeMachines(machine_stats, params.apSpec);
    run.metrics["ap.stes"] = static_cast<double>(placement.stes);
    run.metrics["ap.blocks"] = static_cast<double>(placement.blocksUsed);
    run.metrics["ap.chips"] = placement.chipsUsed;
    run.metrics["ap.passes"] = placement.passes;
    run.metrics["ap.utilization"] = placement.utilization;

    Nfa nfa = unionNfaOf(specs);
    ap::ApMachine machine = ap::fromNfa(nfa);
    ap::ApSimulator sim(machine, params.apSimConfig);
    run.timing.compileSeconds = compile_timer.seconds();

    double kernel = 0.0;
    uint64_t events_count = 0;
    Stopwatch timer;
    if (g.size() <= params.fullSimSymbolLimit) {
        ap::ApRunStats stats{};
        run.events.clear();
        stats = sim.run(g.codes(), [&](uint32_t id, uint64_t end) {
            run.events.push_back(ReportEvent{id, end});
        });
        automata::normalizeEvents(run.events);
        events_count = stats.reportEvents;
        kernel = sim.kernelSeconds(stats) * placement.passes;
        run.metrics["ap.stall_cycles"] =
            static_cast<double>(stats.stallCycles);
        run.metrics["ap.reporting_cycles"] =
            static_cast<double>(stats.reportingCycles);
    } else {
        run.events = fastEvents(g, specs);
        events_count = run.events.size();
        kernel = static_cast<double>(g.size()) / params.apSpec.clockHz *
                 placement.passes;
        run.notes = "analytic timing (genome over full-sim limit)";
    }
    run.timing.hostSeconds = timer.seconds();

    ap::ApTimeBreakdown t = ap::estimateRun(
        g.size(), events_count, placement.passes, params.apSpec);
    run.timing.modelKernelSeconds = kernel;
    run.timing.modelTotalSeconds =
        t.configureSeconds + kernel + t.outputSeconds;
    run.timing.kernelSeconds = run.timing.modelKernelSeconds;
    run.timing.totalSeconds = run.timing.modelTotalSeconds;
    return run;
}

EngineRun
runApCounter(const genome::Sequence &g, const PatternSet &set,
             const EngineParams &params)
{
    EngineRun run;
    Stopwatch compile_timer;

    // Build one counter machine per pattern, merged per stream.
    ap::ApMachine forward_machine, reversed_machine;
    std::vector<ap::MachineStats> machine_stats;
    bool any_reversed = false;
    for (const Pattern &p : set.patterns) {
        ap::ApMachine m = ap::buildCounterMachine(p.spec);
        machine_stats.push_back(m.stats());
        if (p.reversedStream) {
            any_reversed = true;
            ap::mergeMachines(reversed_machine, m);
        } else {
            ap::mergeMachines(forward_machine, m);
        }
    }
    ap::Placement placement =
        ap::placeMachines(machine_stats, params.apSpec);
    run.metrics["ap.stes"] = static_cast<double>(placement.stes);
    run.metrics["ap.counters"] = static_cast<double>(placement.counters);
    run.metrics["ap.gates"] = static_cast<double>(placement.gates);
    run.metrics["ap.passes"] = placement.passes;
    run.timing.compileSeconds = compile_timer.seconds();

    const genome::Sequence reversed =
        any_reversed ? reversedStream(g) : genome::Sequence();
    const uint64_t total_symbols =
        g.size() + (any_reversed ? reversed.size() : 0);

    Stopwatch timer;
    uint64_t total_cycles = 0;
    uint64_t events_count = 0;
    if (total_symbols <= params.fullSimSymbolLimit) {
        auto run_stream = [&](const ap::ApMachine &m,
                              const genome::Sequence &stream) {
            if (m.size() == 0 || stream.empty())
                return;
            ap::ApSimulator sim(m, params.apSimConfig);
            ap::ApRunStats stats =
                sim.run(stream.codes(), [&](uint32_t id, uint64_t end) {
                    run.events.push_back(ReportEvent{id, end});
                });
            total_cycles += stats.totalCycles();
            events_count += stats.reportEvents;
        };
        run_stream(forward_machine, g);
        run_stream(reversed_machine, reversed);
        automata::normalizeEvents(run.events);
    } else {
        // Events via the verified fast path; note the counter design's
        // own overlap artefacts are then not represented.
        auto fwd = fastEvents(g, set.specsForStream(false));
        auto rev = fastEvents(reversed, set.specsForStream(true));
        run.events = std::move(fwd);
        run.events.insert(run.events.end(), rev.begin(), rev.end());
        automata::normalizeEvents(run.events);
        events_count = run.events.size();
        total_cycles = total_symbols;
        run.notes = "analytic timing (genome over full-sim limit)";
    }
    run.timing.hostSeconds = timer.seconds();

    const double kernel =
        static_cast<double>(total_cycles) / params.apSpec.clockHz *
        placement.passes;
    ap::ApTimeBreakdown t = ap::estimateRun(
        total_symbols, events_count, placement.passes, params.apSpec);
    run.timing.modelKernelSeconds = kernel;
    run.timing.modelTotalSeconds =
        t.configureSeconds + kernel + t.outputSeconds;
    run.timing.kernelSeconds = kernel;
    run.timing.totalSeconds = run.timing.modelTotalSeconds;
    return run;
}

EngineRun
runCasOffinder(const genome::Sequence &g, const PatternSet &set,
               const EngineParams &params)
{
    EngineRun run;
    Stopwatch timer;
    baselines::CasOffinderResult r =
        baselines::casOffinderScan(g, set.specsForStream(false));
    run.events = std::move(r.events);
    run.timing.hostSeconds = timer.seconds();
    run.timing.modelKernelSeconds =
        params.casoffinderModel.kernelSeconds(r.work);
    run.timing.modelTotalSeconds =
        params.casoffinderModel.totalSeconds(r.work);
    run.timing.kernelSeconds = run.timing.modelKernelSeconds;
    run.timing.totalSeconds = run.timing.modelTotalSeconds;
    run.metrics["casoffinder.pam_hits"] =
        static_cast<double>(r.work.pamHits);
    run.metrics["casoffinder.comparisons"] =
        static_cast<double>(r.work.comparisons);
    run.metrics["casoffinder.bases"] =
        static_cast<double>(r.work.basesCompared);
    return run;
}

EngineRun
runCasOt(EngineKind kind, const genome::Sequence &g, const PatternSet &set,
         const EngineParams &params)
{
    baselines::CasOtConfig cfg = params.casotConfig;
    cfg.mode = kind == EngineKind::CasOtIndexed
                   ? baselines::CasOtMode::Indexed
                   : baselines::CasOtMode::Direct;
    EngineRun run;
    baselines::CasOtResult r =
        baselines::casOtScan(g, set.specsForStream(false), cfg);
    run.events = std::move(r.events);
    run.timing.hostSeconds = r.seconds;
    run.timing.kernelSeconds = r.seconds;
    run.timing.totalSeconds = r.seconds;
    run.metrics["casot.pam_sites"] = static_cast<double>(r.work.pamSites);
    run.metrics["casot.bases"] =
        static_cast<double>(r.work.basesCompared);
    run.metrics["casot.seed_variants"] =
        static_cast<double>(r.work.seedVariants);
    run.metrics["casot.lookups"] =
        static_cast<double>(r.work.indexLookups);
    run.metrics["casot.verifications"] =
        static_cast<double>(r.work.verifications);
    run.metrics["casot.perl_adjusted_s"] = r.perlAdjustedSeconds(cfg);
    return run;
}

} // namespace

EngineRun
runEngine(EngineKind kind, const genome::Sequence &genome_seq,
          const PatternSet &set, const EngineParams &params)
{
    requireOrientation(kind, set);
    EngineRun run;
    switch (kind) {
      case EngineKind::Brute:
        run = runBrute(genome_seq, set);
        break;
      case EngineKind::Reference:
        run = runReference(genome_seq, set);
        break;
      case EngineKind::HscanAuto:
      case EngineKind::HscanDfa:
      case EngineKind::HscanBitParallel:
        run = runHscan(kind, genome_seq, set, params);
        break;
      case EngineKind::HscanPrefilter:
        run = runHscanPrefilter(genome_seq, set);
        break;
      case EngineKind::GpuInfant2:
        run = runInfant2(genome_seq, set, params);
        break;
      case EngineKind::Fpga:
        run = runFpga(genome_seq, set, params);
        break;
      case EngineKind::Ap:
        run = runAp(genome_seq, set, params);
        break;
      case EngineKind::ApCounter:
        run = runApCounter(genome_seq, set, params);
        break;
      case EngineKind::CasOffinder:
        run = runCasOffinder(genome_seq, set, params);
        break;
      case EngineKind::CasOt:
      case EngineKind::CasOtIndexed:
        run = runCasOt(kind, genome_seq, set, params);
        break;
    }
    run.kind = kind;
    run.metrics["events"] = static_cast<double>(run.events.size());
    return run;
}

} // namespace crispr::core
