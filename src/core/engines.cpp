/**
 * @file
 * Legacy free-function surface over the engine registry. No dispatch
 * lives here any more: engineName / allEngines / requiredOrientation /
 * runEngine all delegate to EngineRegistry, and the per-platform
 * adapters live in src/core/engines/.
 */

#include "core/engines.hpp"

#include "core/engine.hpp"
#include "core/engine_registry.hpp"

namespace crispr::core {

const char *
engineName(EngineKind kind)
{
    // Auto is a selector, not an adapter: it has no registry entry
    // (SearchSession expands it before any registry lookup).
    if (kind == EngineKind::Auto)
        return "auto";
    return EngineRegistry::instance().engine(kind).name();
}

std::vector<EngineKind>
allEngines()
{
    return EngineRegistry::instance().kinds();
}

Orientation
requiredOrientation(EngineKind kind)
{
    return EngineRegistry::instance().engine(kind).requiredOrientation();
}

EngineRun
runEngine(EngineKind kind, const genome::Sequence &genome,
          const PatternSet &set, const EngineParams &params)
{
    // Always a single serial pass: callers that want a threaded scan
    // set RuntimeOptions::threads and go through SearchSession, which
    // routes every chunk-capable engine over the chunked pipeline.
    const Engine &engine = EngineRegistry::instance().engine(kind);
    CompiledPattern compiled = engine.compile(set, params);
    return engine.scan(compiled, SequenceView(genome));
}

} // namespace crispr::core
