#include "core/pattern_db.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>

#include "common/faultpoints.hpp"
#include "common/logging.hpp"
#include "common/serial.hpp"

namespace crispr::core {

namespace fs = std::filesystem;
using common::Error;
using common::ErrorCode;

namespace {

/** open() registry: one shared database per canonical directory. */
std::mutex g_registry_mutex;
std::map<std::string, std::shared_ptr<PatternDatabase>> &
registry()
{
    static std::map<std::string, std::shared_ptr<PatternDatabase>> map;
    return map;
}

std::optional<std::vector<uint8_t>>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return std::nullopt;
    return bytes;
}

} // namespace

common::Expected<std::shared_ptr<PatternDatabase>>
PatternDatabase::open(const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return Error(ErrorCode::InvalidArgument,
                     strprintf("cannot create database directory: %s",
                               ec.message().c_str()))
            .withContext("dir", dir);
    if (!fs::is_directory(dir, ec))
        return Error(ErrorCode::InvalidArgument,
                     "database path is not a directory")
            .withContext("dir", dir);
    fs::path canonical = fs::canonical(dir, ec);
    const std::string key = ec ? dir : canonical.string();

    std::lock_guard<std::mutex> lock(g_registry_mutex);
    auto &slot = registry()[key];
    if (!slot)
        slot = std::shared_ptr<PatternDatabase>(
            new PatternDatabase(key));
    return slot;
}

std::string
PatternDatabase::fileNameFor(const std::string &key)
{
    return strprintf("%016llx.cpdb",
                     static_cast<unsigned long long>(common::fnv1a64(
                         {reinterpret_cast<const uint8_t *>(key.data()),
                          key.size()})));
}

std::string
PatternDatabase::pathFor(const std::string &key) const
{
    return (fs::path(dir_) / fileNameFor(key)).string();
}

std::optional<std::vector<uint8_t>>
PatternDatabase::load(const std::string &key)
{
    const std::string name = fileNameFor(key);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = mem_.find(name);
        if (it != mem_.end())
            return it->second;
    }
    auto bytes = readFile(fs::path(dir_) / name);
    if (!bytes)
        return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    return mem_.emplace(name, std::move(*bytes)).first->second;
}

common::Status
PatternDatabase::store(const std::string &key,
                       std::span<const uint8_t> blob)
{
    // The in-memory tier is filled first: even when the directory is
    // unwritable (read-only volume, disk full) this process still
    // serves the blob from memory — a disk failure degrades
    // persistence, never availability.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        mem_[fileNameFor(key)].assign(blob.begin(), blob.end());
    }
    if (common::faultpoints::shouldFail("db.store"))
        return Error(ErrorCode::FaultInjected,
                     "injected db.store fault")
            .withContext("key", key);
    const std::string path = pathFor(key);
    // Unique temp per writer thread so concurrent stores never
    // interleave; rename() is atomic within the directory.
    const std::string tmp =
        path + strprintf(".tmp.%llu",
                         static_cast<unsigned long long>(
                             std::hash<std::thread::id>{}(
                                 std::this_thread::get_id())));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return Error(ErrorCode::Internal,
                         "cannot open database temp file for writing")
                .withContext("path", tmp);
        out.write(reinterpret_cast<const char *>(blob.data()),
                  static_cast<std::streamsize>(blob.size()));
        if (!out.good())
            return Error(ErrorCode::Internal,
                         "short write to database temp file")
                .withContext("path", tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return Error(ErrorCode::Internal,
                     "cannot publish database file")
            .withContext("path", path);
    }
    return common::Status();
}

size_t
PatternDatabase::preload()
{
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file(ec) ||
            entry.path().extension() != ".cpdb")
            continue;
        const std::string name = entry.path().filename().string();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (mem_.count(name))
                continue;
        }
        auto bytes = readFile(entry.path());
        if (!bytes)
            continue;
        std::lock_guard<std::mutex> lock(mutex_);
        mem_.emplace(name, std::move(*bytes));
    }
    return residentCount();
}

size_t
PatternDatabase::residentCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return mem_.size();
}

} // namespace crispr::core
