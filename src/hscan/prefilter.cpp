#include "hscan/prefilter.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::hscan {

using automata::HammingSpec;
using automata::ReportEvent;

PrefilterMatcher::PrefilterMatcher(std::span<const HammingSpec> specs)
{
    if (specs.empty())
        fatal("prefilter matcher needs at least one pattern");
    for (const HammingSpec &spec : specs) {
        const size_t len = spec.masks.size();
        const size_t lo = spec.mismatchLo;
        const size_t hi = std::min(spec.mismatchHi, len);
        std::vector<size_t> anchor;
        for (size_t j = 0; j < len; ++j)
            if (j < lo || j >= hi)
                anchor.push_back(j);
        if (anchor.empty())
            fatal("prefilter requires an exact (anchor) region; "
                  "pattern %u has none", spec.reportId);

        std::vector<genome::BaseMask> anchor_mask;
        anchor_mask.reserve(anchor.size());
        for (size_t j : anchor)
            anchor_mask.push_back(spec.masks[j]);

        auto it = std::find_if(
            shapes_.begin(), shapes_.end(), [&](const Shape &s) {
                return s.len == len && s.anchorPos == anchor &&
                       s.anchorMask == anchor_mask;
            });
        if (it == shapes_.end()) {
            Shape shape;
            shape.len = len;
            shape.anchorPos = std::move(anchor);
            shape.anchorMask = std::move(anchor_mask);
            shapes_.push_back(std::move(shape));
            it = shapes_.end() - 1;
        }
        it->specs.push_back(spec);
    }
}

std::vector<ReportEvent>
PrefilterMatcher::scanAll(const genome::Sequence &seq)
{
    stats_ = PrefilterStats{};
    std::vector<ReportEvent> events;
    for (const Shape &shape : shapes_) {
        if (seq.size() < shape.len)
            continue;
        const size_t positions = seq.size() - shape.len + 1;
        const size_t *anchor = shape.anchorPos.data();
        const genome::BaseMask *amask = shape.anchorMask.data();
        const size_t acount = shape.anchorPos.size();

        for (size_t s = 0; s < positions; ++s) {
            ++stats_.anchorsProbed;
            bool anchored = true;
            for (size_t a = 0; a < acount; ++a) {
                if (!genome::maskMatches(amask[a], seq[s + anchor[a]])) {
                    anchored = false;
                    break;
                }
            }
            if (!anchored)
                continue;
            ++stats_.anchorsHit;
            for (const HammingSpec &spec : shape.specs) {
                ++stats_.verifications;
                const size_t lo = spec.mismatchLo;
                const size_t hi = std::min(spec.mismatchHi, shape.len);
                int mismatches = 0;
                bool ok = true;
                for (size_t j = lo; j < hi; ++j) {
                    if (!genome::maskMatches(spec.masks[j],
                                             seq[s + j])) {
                        if (++mismatches > spec.maxMismatches) {
                            ok = false;
                            break;
                        }
                    }
                }
                if (ok) {
                    ++stats_.events;
                    events.push_back(ReportEvent{
                        spec.reportId,
                        static_cast<uint64_t>(s + shape.len - 1)});
                }
            }
        }
    }
    automata::normalizeEvents(events);
    return events;
}

} // namespace crispr::hscan
