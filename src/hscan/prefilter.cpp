#include "hscan/prefilter.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "hscan/simd_kernels.hpp"

namespace crispr::hscan {

using automata::HammingSpec;
using automata::ReportEvent;

PrefilterMatcher::PrefilterMatcher(std::span<const HammingSpec> specs)
{
    if (specs.empty())
        fatal("prefilter matcher needs at least one pattern");
    for (const HammingSpec &spec : specs) {
        const size_t len = spec.masks.size();
        const size_t lo = spec.mismatchLo;
        const size_t hi = std::min(spec.mismatchHi, len);
        std::vector<size_t> anchor;
        for (size_t j = 0; j < len; ++j)
            if (j < lo || j >= hi)
                anchor.push_back(j);
        if (anchor.empty())
            fatal("prefilter requires an exact (anchor) region; "
                  "pattern %u has none", spec.reportId);

        std::vector<genome::BaseMask> anchor_mask;
        anchor_mask.reserve(anchor.size());
        for (size_t j : anchor)
            anchor_mask.push_back(spec.masks[j]);

        auto it = std::find_if(
            shapes_.begin(), shapes_.end(), [&](const Shape &s) {
                return s.len == len && s.anchorPos == anchor &&
                       s.anchorMask == anchor_mask;
            });
        if (it == shapes_.end()) {
            Shape shape;
            shape.len = len;
            shape.anchorPos = std::move(anchor);
            shape.anchorMask = std::move(anchor_mask);
            shapes_.push_back(std::move(shape));
            it = shapes_.end() - 1;
        }
        it->specs.push_back(spec);
    }
}

void
PrefilterMatcher::setSimdTier(SimdTier tier)
{
    if (!simdTierUsable(tier))
        fatal("SIMD tier %s is not usable on this host/build",
              simdTierName(tier));
    tier_ = tier;
}

std::vector<ReportEvent>
PrefilterMatcher::scanAll(const genome::Sequence &seq)
{
    // Survivor batches are probed in position blocks so the candidate
    // buffer stays cache-sized on whole-chromosome scans.
    constexpr size_t kBlockPositions = 1u << 16;

    stats_ = PrefilterStats{};
    std::vector<ReportEvent> events;
    std::vector<detail::AnchorProbe> probes;
    std::vector<uint32_t> survivors;
    for (const Shape &shape : shapes_) {
        if (seq.size() < shape.len)
            continue;
        const size_t positions = seq.size() - shape.len + 1;
        stats_.anchorsProbed += positions;

        probes.clear();
        for (size_t a = 0; a < shape.anchorPos.size(); ++a) {
            detail::AnchorProbe probe;
            probe.offset = shape.anchorPos[a];
            for (uint8_t code = 0; code < genome::kNumSymbols; ++code)
                probe.match[code] =
                    genome::maskMatches(shape.anchorMask[a], code)
                        ? 0xff
                        : 0x00;
            probes.push_back(probe);
        }

        for (size_t block = 0; block < positions;
             block += kBlockPositions) {
            const size_t count =
                std::min(kBlockPositions, positions - block);
            survivors.clear();
            switch (tier_) {
            case SimdTier::Avx2:
                detail::anchorScanAvx2(seq.data() + block, count,
                                       probes, survivors);
                break;
            case SimdTier::Avx512:
                detail::anchorScanAvx512(seq.data() + block, count,
                                         probes, survivors);
                break;
            default:
                detail::anchorScanScalar(seq.data() + block, count,
                                         probes, survivors);
                break;
            }
            stats_.anchorsHit += survivors.size();
            for (uint32_t rel : survivors) {
                const size_t s = block + rel;
                for (const HammingSpec &spec : shape.specs) {
                    ++stats_.verifications;
                    const size_t lo = spec.mismatchLo;
                    const size_t hi =
                        std::min(spec.mismatchHi, shape.len);
                    int mismatches = 0;
                    bool ok = true;
                    for (size_t j = lo; j < hi; ++j) {
                        if (!genome::maskMatches(spec.masks[j],
                                                 seq[s + j])) {
                            if (++mismatches > spec.maxMismatches) {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if (ok) {
                        ++stats_.events;
                        events.push_back(ReportEvent{
                            spec.reportId,
                            static_cast<uint64_t>(s + shape.len -
                                                  1)});
                    }
                }
            }
        }
    }
    automata::normalizeEvents(events);
    return events;
}

} // namespace crispr::hscan
