/**
 * @file
 * SIMD tier selection for the HScan CPU kernels (Shift-Or and the
 * PAM-anchor prefilter). A tier names an ISA level the vectorized
 * kernels were compiled for; the tier actually used by a scan is
 * resolved at runtime from, in precedence order:
 *
 *   1. the CRISPR_SIMD environment variable (scalar|avx2|avx512) —
 *      the operational kill switch, it overrides everything;
 *   2. the per-request tier (RuntimeOptions::simdTier, plumbed through
 *      ScanOptions to the engine adapters);
 *   3. CPUID: the best tier both compiled in (CRISPR_SIMD CMake
 *      option) and supported by the host.
 *
 * A requested tier the host or build cannot run degrades to the best
 * usable tier below it (logged once), never to an illegal-instruction
 * fault — so CRISPR_SIMD=avx512 is safe to export fleet-wide. Every
 * tier is bit-identical by construction and proven so by the SIMD
 * conformance matrix (tests/test_simd.cpp, tests/test_conformance.cpp).
 */

#ifndef CRISPR_HSCAN_SIMD_HPP_
#define CRISPR_HSCAN_SIMD_HPP_

#include <cstdint>
#include <optional>
#include <string_view>

namespace crispr::hscan {

/** ISA level of a vectorized scan kernel, in increasing width. */
enum class SimdTier : uint8_t
{
    Auto = 0,   //!< resolve to the best usable tier at scan time
    Scalar = 1, //!< portable scalar kernels (always usable)
    Avx2 = 2,   //!< 4 x 64-bit pattern lanes / 32 genome positions
    Avx512 = 3, //!< 8 x 64-bit pattern lanes / 64 genome positions
};

/** Printable tier name ("auto", "scalar", "avx2", "avx512"). */
const char *simdTierName(SimdTier tier);

/** Parse a tier name (the CRISPR_SIMD syntax); nullopt if unknown. */
std::optional<SimdTier> parseSimdTier(std::string_view name);

/** True when the build compiled this tier's kernels in. */
bool simdTierCompiled(SimdTier tier);

/** True when the host CPU can execute this tier (CPUID). */
bool simdTierSupported(SimdTier tier);

/** True when a scan may use the tier: compiled in and CPU-supported.
 *  Scalar is always usable; Auto is not a concrete tier. */
bool simdTierUsable(SimdTier tier);

/** The widest usable tier on this host/build. */
SimdTier bestSimdTier();

/**
 * Resolve the tier a scan will run: CRISPR_SIMD env override first,
 * then `requested`, then CPUID. Never returns Auto; an unusable
 * request degrades to the widest usable tier below it.
 */
SimdTier resolveSimdTier(SimdTier requested = SimdTier::Auto);

/** Gauge value of a resolved tier (scalar=0, avx2=1, avx512=2). */
double simdTierGaugeValue(SimdTier tier);

} // namespace crispr::hscan

#endif // CRISPR_HSCAN_SIMD_HPP_
