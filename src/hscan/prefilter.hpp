/**
 * @file
 * PAM-anchored prefilter scanner — the Hyperscan "literal prefilter +
 * confirm" strategy specialised to off-target patterns: the exact
 * (PAM) region of each pattern shape is a short anchor whose genome
 * hit rate is low (1/8 .. 1/16 for NRG/NGG); only anchored windows are
 * verified against the guides, with early exit. For d above the DFA
 * budget this beats the bit-parallel path whenever the guide count is
 * moderate, because verification touches ~(d+1)/0.75 bases per
 * (candidate, guide) instead of (d+1) word ops per *every* symbol.
 *
 * The anchor probe is the vectorizable stage of the cascade: every
 * genome position is tested independently, so the AVX2/AVX-512 tiers
 * (hscan/simd.hpp) probe 32/64 positions per iteration with byte-LUT
 * shuffles and hand only surviving positions to the scalar verifier.
 * All tiers run the identical anchor predicate — survivors, stats,
 * and events are bit-identical across tiers (tests/test_simd.cpp).
 */

#ifndef CRISPR_HSCAN_PREFILTER_HPP_
#define CRISPR_HSCAN_PREFILTER_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "automata/builders.hpp"
#include "automata/interp.hpp"
#include "genome/sequence.hpp"
#include "hscan/simd.hpp"

namespace crispr::hscan {

/** Work counters of a prefilter scan. Invariants (tested):
 *  anchorsHit <= anchorsProbed, verifications == anchorsHit x specs
 *  of the hit shape, events <= verifications. */
struct PrefilterStats
{
    uint64_t anchorsProbed = 0; //!< genome positions x shapes
    uint64_t anchorsHit = 0;    //!< candidates surviving the anchor
    uint64_t verifications = 0; //!< (candidate, guide) verifications
    uint64_t events = 0;
};

/** Whole-sequence (non-streaming) prefilter matcher. */
class PrefilterMatcher
{
  public:
    /**
     * Compile pattern specs. Every spec must have a non-empty exact
     * region (the anchor); specs sharing an exact-region layout share
     * the anchor scan.
     */
    explicit PrefilterMatcher(
        std::span<const automata::HammingSpec> specs);

    /**
     * Select the anchor-probe kernel tier for subsequent scanAll()
     * calls. `tier` must already be resolved (resolveSimdTier);
     * Auto or an unusable tier is a fatal error.
     */
    void setSimdTier(SimdTier tier);
    SimdTier simdTier() const { return tier_; }

    /** Scan a whole sequence; returns normalised events. */
    std::vector<automata::ReportEvent>
    scanAll(const genome::Sequence &seq);

    const PrefilterStats &stats() const { return stats_; }

    /** Number of distinct anchor shapes compiled. */
    size_t shapeCount() const { return shapes_.size(); }

  private:
    struct Shape
    {
        size_t len;                       //!< pattern length
        std::vector<size_t> anchorPos;    //!< exact positions, sorted
        std::vector<genome::BaseMask> anchorMask; //!< per anchorPos
        std::vector<automata::HammingSpec> specs;
    };

    std::vector<Shape> shapes_;
    PrefilterStats stats_;
    SimdTier tier_ = SimdTier::Scalar;
};

} // namespace crispr::hscan

#endif // CRISPR_HSCAN_PREFILTER_HPP_
