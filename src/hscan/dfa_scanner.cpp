#include "hscan/dfa_scanner.hpp"

#include "automata/hopcroft.hpp"

namespace crispr::hscan {

std::optional<DfaScanner>
DfaScanner::compile(std::span<const automata::HammingSpec> specs,
                    const DfaOptions &opts)
{
    std::vector<automata::Nfa> nfas;
    nfas.reserve(specs.size());
    for (const auto &spec : specs)
        nfas.push_back(automata::buildHammingNfa(spec));
    automata::Nfa merged = automata::unionNfas(nfas);

    auto dfa = automata::subsetConstruct(merged, opts.maxStates);
    if (!dfa)
        return std::nullopt;
    if (opts.minimize)
        *dfa = automata::hopcroftMinimize(*dfa);
    return DfaScanner(std::move(*dfa));
}

std::vector<automata::ReportEvent>
DfaScanner::scanAll(const genome::Sequence &seq)
{
    reset();
    std::vector<automata::ReportEvent> events;
    scan(seq.codes(), [&](uint32_t id, uint64_t end) {
        events.push_back(automata::ReportEvent{id, end});
    });
    return events;
}

} // namespace crispr::hscan
