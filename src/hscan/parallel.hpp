/**
 * @file
 * Multi-threaded scanning: splits the genome into overlapping chunks,
 * scans them on a thread pool (one Scanner clone per thread), and
 * merges events deterministically. The paper evaluates Hyperscan
 * single-threaded; this is the obvious multicore extension a library
 * user wants, with bit-identical results to the serial scan (tested).
 */

#ifndef CRISPR_HSCAN_PARALLEL_HPP_
#define CRISPR_HSCAN_PARALLEL_HPP_

#include <cstdint>

#include "hscan/multipattern.hpp"

namespace crispr::hscan {

/** Parallel-scan options. */
struct ParallelOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;
    /** Chunk size per work item (before overlap). */
    size_t chunkSize = 4 << 20;
};

/**
 * Scan `seq` with the database across threads. Each chunk is re-scanned
 * with enough leading overlap that no match is lost at a seam; events
 * are deduplicated and returned normalised (sorted by (end, id)).
 */
std::vector<automata::ReportEvent>
parallelScan(const Database &db, const genome::Sequence &seq,
             const ParallelOptions &options = {});

} // namespace crispr::hscan

#endif // CRISPR_HSCAN_PARALLEL_HPP_
