/**
 * @file
 * Internal kernel entry points shared between the baseline translation
 * unit and the per-ISA ones (simd_avx2.cpp built with -mavx2,
 * simd_avx512.cpp with -mavx512f/bw/vl). Only resolveSimdTier-gated
 * call sites may invoke the AVX entry points — the per-ISA TUs contain
 * instructions the baseline build flags do not guarantee.
 *
 * Every kernel family implements the exact same observable semantics;
 * the scalar member is the executable specification.
 */

#ifndef CRISPR_HSCAN_SIMD_KERNELS_HPP_
#define CRISPR_HSCAN_SIMD_KERNELS_HPP_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hscan/simd_shiftor.hpp"

namespace crispr::hscan::detail {

/** Hit callback: lane index into the SoA layout + chunk-local end. */
using ShiftOrHitFn = void (*)(void *ctx, uint32_t lane, size_t t);

/**
 * Advance `rows` (layout.rowCount x layout.width, row-major) over
 * `input`, invoking `onHit` at most once per (lane, position), lanes
 * ascending within a position. Padded lanes never hit.
 */
void shiftOrScanScalar(const ShiftOrSoA &layout, uint64_t *rows,
                       std::span<const uint8_t> input,
                       ShiftOrHitFn onHit, void *ctx);
void shiftOrScanAvx2(const ShiftOrSoA &layout, uint64_t *rows,
                     std::span<const uint8_t> input,
                     ShiftOrHitFn onHit, void *ctx);
void shiftOrScanAvx512(const ShiftOrSoA &layout, uint64_t *rows,
                       std::span<const uint8_t> input,
                       ShiftOrHitFn onHit, void *ctx);

/**
 * One anchor position of a prefilter shape, as the probe kernels see
 * it: the genome-code byte at text[s + offset] must satisfy
 * match[code] != 0 for position s to survive. match is a 16-entry
 * byte LUT over genome codes (indices 0..4 used; N maps to 0) so the
 * vector kernels can probe it with a byte shuffle.
 */
struct AnchorProbe
{
    size_t offset = 0;
    std::array<uint8_t, 16> match{};
};

/**
 * Probe positions [0, count) of `text` against all anchors; append
 * surviving (block-relative) positions to `out`, ascending. The
 * caller guarantees text[count - 1 + max offset] is readable; the
 * vector kernels additionally read up to their lane width beyond a
 * surviving probe only within that bound (full blocks only — the tail
 * is probed scalar).
 */
void anchorScanScalar(const uint8_t *text, size_t count,
                      std::span<const AnchorProbe> anchors,
                      std::vector<uint32_t> &out);
void anchorScanAvx2(const uint8_t *text, size_t count,
                    std::span<const AnchorProbe> anchors,
                    std::vector<uint32_t> &out);
void anchorScanAvx512(const uint8_t *text, size_t count,
                      std::span<const AnchorProbe> anchors,
                      std::vector<uint32_t> &out);

} // namespace crispr::hscan::detail

#endif // CRISPR_HSCAN_SIMD_KERNELS_HPP_
