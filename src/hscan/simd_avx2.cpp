/**
 * @file
 * AVX2 kernels (this TU alone is built with -mavx2; callers reach it
 * only through resolveSimdTier-gated dispatch):
 *
 *  - shiftOrScanAvx2: 4 pattern lanes of 64 bits per vector; the
 *    identical shift-or recurrence as the scalar kernel, all rows
 *    advanced from the previous symbol's state.
 *  - anchorScanAvx2: 32 genome positions per iteration; each anchor's
 *    5-code match set is a 16-byte LUT probed with a byte shuffle,
 *    ANDed across anchors, movemask -> surviving positions.
 */

#if CRISPR_SIMD_ENABLED && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "hscan/simd_kernels.hpp"

namespace crispr::hscan::detail {

void
shiftOrScanAvx2(const ShiftOrSoA &l, uint64_t *rows,
                std::span<const uint8_t> input, ShiftOrHitFn onHit,
                void *ctx)
{
    const size_t width = l.width;
    const size_t row_count = l.rowCount;
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i zero = _mm256_setzero_si256();
    for (size_t t = 0; t < input.size(); ++t) {
        const uint64_t *sym = l.symbol[input[t]].data();
        for (size_t p = 0; p < width; p += 4) {
            const __m256i match = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(sym + p));
            __m256i prev = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(rows + p));
            const __m256i r0 = _mm256_and_si256(
                _mm256_or_si256(_mm256_slli_epi64(prev, 1), one),
                match);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(rows + p),
                                r0);
            __m256i hit = _mm256_and_si256(
                r0, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                        l.accept.data() + p)));
            const __m256i mm = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(l.mismatch.data() +
                                                  p));
            for (size_t k = 1; k < row_count; ++k) {
                uint64_t *rk = rows + k * width + p;
                const __m256i cur = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(rk));
                const __m256i extended = _mm256_and_si256(
                    _mm256_or_si256(_mm256_slli_epi64(cur, 1), one),
                    match);
                const __m256i substituted = _mm256_and_si256(
                    _mm256_or_si256(_mm256_slli_epi64(prev, 1), one),
                    mm);
                prev = cur;
                const __m256i next =
                    _mm256_or_si256(extended, substituted);
                _mm256_storeu_si256(reinterpret_cast<__m256i *>(rk),
                                    next);
                hit = _mm256_or_si256(
                    hit,
                    _mm256_and_si256(
                        next,
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(
                                l.accept.data() + k * width + p))));
            }
            if (!_mm256_testz_si256(hit, hit)) {
                // Lanes whose 64-bit hit word is non-zero, ascending,
                // to preserve the scalar kernel's emission order.
                const int dead = _mm256_movemask_pd(_mm256_castsi256_pd(
                    _mm256_cmpeq_epi64(hit, zero)));
                for (uint32_t lane = 0; lane < 4; ++lane)
                    if (!(dead & (1 << lane)))
                        onHit(ctx, static_cast<uint32_t>(p) + lane, t);
            }
        }
    }
}

void
anchorScanAvx2(const uint8_t *text, size_t count,
               std::span<const AnchorProbe> anchors,
               std::vector<uint32_t> &out)
{
    const size_t blocks = count / 32;
    for (size_t b = 0; b < blocks; ++b) {
        const size_t s0 = b * 32;
        __m256i alive = _mm256_set1_epi8(static_cast<char>(0xff));
        for (const AnchorProbe &a : anchors) {
            const __m256i lut = _mm256_broadcastsi128_si256(
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    a.match.data())));
            const __m256i codes = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(text + s0 +
                                                  a.offset));
            // Genome codes are 0..4 < 16, so the high shuffle bit is
            // never set and the LUT probe is exact.
            alive = _mm256_and_si256(alive,
                                     _mm256_shuffle_epi8(lut, codes));
            if (_mm256_testz_si256(alive, alive))
                break;
        }
        uint32_t survivors = ~static_cast<uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(
                alive, _mm256_setzero_si256())));
        while (survivors) {
            const uint32_t lane =
                static_cast<uint32_t>(__builtin_ctz(survivors));
            out.push_back(static_cast<uint32_t>(s0) + lane);
            survivors &= survivors - 1;
        }
    }
    // Scalar tail: positions that do not fill a 32-wide block.
    const size_t tail0 = blocks * 32;
    for (size_t s = tail0; s < count; ++s) {
        bool alive = true;
        for (const AnchorProbe &a : anchors) {
            if (!a.match[text[s + a.offset]]) {
                alive = false;
                break;
            }
        }
        if (alive)
            out.push_back(static_cast<uint32_t>(s));
    }
}

} // namespace crispr::hscan::detail

#endif // CRISPR_SIMD_ENABLED && x86
