/**
 * @file
 * The HScan public scanning facade: spawn a Scanner from a compiled
 * Database and stream genome chunks through it. Mirrors the
 * hs_scan_stream usage pattern of the library the paper benchmarks.
 */

#ifndef CRISPR_HSCAN_MULTIPATTERN_HPP_
#define CRISPR_HSCAN_MULTIPATTERN_HPP_

#include <cstdint>
#include <variant>

#include "hscan/database.hpp"
#include "hscan/shiftor.hpp"

namespace crispr::hscan {

/** Accumulated scan statistics. */
struct ScanStats
{
    uint64_t symbols = 0; //!< input symbols consumed
    uint64_t events = 0;  //!< report events emitted
};

/**
 * A streaming scanner instantiated from a Database. Copyable; each copy
 * carries independent stream state.
 */
class Scanner
{
  public:
    explicit Scanner(const Database &db);

    /** Reset stream state (and statistics). */
    void reset();

    /** Consume one chunk of genome codes. */
    void scan(std::span<const uint8_t> input,
              const automata::ReportSink &sink, uint64_t base_offset = 0);

    /** Whole-sequence convenience scan (resets first). */
    std::vector<automata::ReportEvent>
    scanAll(const genome::Sequence &seq);

    /** Which path this scanner runs. */
    ScanMode mode() const;

    const ScanStats &stats() const { return stats_; }

  private:
    std::variant<DfaScanner, ShiftOrMatcher> impl_;
    ScanStats stats_;
};

} // namespace crispr::hscan

#endif // CRISPR_HSCAN_MULTIPATTERN_HPP_
