/**
 * @file
 * The HScan public scanning facade: spawn a Scanner from a compiled
 * Database and stream genome chunks through it. Mirrors the
 * hs_scan_stream usage pattern of the library the paper benchmarks.
 *
 * On the bit-parallel path the Scanner also picks the Shift-Or kernel
 * tier (hscan/simd.hpp): the requested tier is resolved against the
 * CRISPR_SIMD override and host CPUID at construction, so callers pass
 * SimdTier::Auto and inherit the fastest bit-identical kernel.
 */

#ifndef CRISPR_HSCAN_MULTIPATTERN_HPP_
#define CRISPR_HSCAN_MULTIPATTERN_HPP_

#include <cstdint>
#include <variant>

#include "hscan/database.hpp"
#include "hscan/shiftor.hpp"
#include "hscan/simd_shiftor.hpp"

namespace crispr::hscan {

/** Accumulated scan statistics. */
struct ScanStats
{
    uint64_t symbols = 0; //!< input symbols consumed
    uint64_t events = 0;  //!< report events emitted
};

/**
 * A streaming scanner instantiated from a Database. Copyable; each copy
 * carries independent stream state.
 */
class Scanner
{
  public:
    /**
     * @param tier requested SIMD tier for the bit-parallel path,
     * resolved at construction (env override, then CPUID). The DFA
     * path is unaffected and reports SimdTier::Scalar.
     */
    explicit Scanner(const Database &db,
                     SimdTier tier = SimdTier::Auto);

    /** Reset stream state (and statistics). */
    void reset();

    /** Consume one chunk of genome codes. */
    void scan(std::span<const uint8_t> input,
              const automata::ReportSink &sink, uint64_t base_offset = 0);

    /** Whole-sequence convenience scan (resets first). */
    std::vector<automata::ReportEvent>
    scanAll(const genome::Sequence &seq);

    /** Which path this scanner runs. */
    ScanMode mode() const;

    /** The resolved SIMD tier this scanner's kernel runs at. */
    SimdTier simdTier() const { return tier_; }

    const ScanStats &stats() const { return stats_; }

  private:
    std::variant<DfaScanner, ShiftOrMatcher, SimdShiftOrMatcher> impl_;
    SimdTier tier_ = SimdTier::Scalar;
    ScanStats stats_;
};

} // namespace crispr::hscan

#endif // CRISPR_HSCAN_MULTIPATTERN_HPP_
