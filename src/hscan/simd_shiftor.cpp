#include "hscan/simd_shiftor.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "hscan/simd_kernels.hpp"

#ifndef CRISPR_SIMD_ENABLED
#define CRISPR_SIMD_ENABLED 1
#endif

namespace crispr::hscan {

using automata::HammingSpec;
using automata::ReportSink;

size_t
ShiftOrSoA::layoutBytes() const
{
    size_t bytes = sizeof(ShiftOrSoA);
    for (const auto &s : symbol)
        bytes += s.size() * sizeof(uint64_t);
    bytes += mismatch.size() * sizeof(uint64_t);
    bytes += accept.size() * sizeof(uint64_t);
    bytes += reportId.size() * sizeof(uint32_t);
    return bytes;
}

std::shared_ptr<const ShiftOrSoA>
buildShiftOrSoA(std::span<const HammingSpec> specs)
{
    auto soa = std::make_shared<ShiftOrSoA>();
    soa->patterns = specs.size();
    // Pad to the widest vector width (8 x 64-bit lanes) so every
    // kernel can run full blocks with no lane-tail special case.
    soa->width = (specs.size() + 7) / 8 * 8;
    if (soa->width == 0)
        soa->width = 8;
    size_t max_rows = 1;
    for (const HammingSpec &spec : specs)
        max_rows = std::max(
            max_rows, static_cast<size_t>(spec.maxMismatches) + 1);
    soa->rowCount = max_rows;

    for (auto &s : soa->symbol)
        s.assign(soa->width, 0);
    soa->mismatch.assign(soa->width, 0);
    soa->accept.assign(soa->rowCount * soa->width, 0);
    soa->reportId.assign(soa->width, 0);

    for (size_t p = 0; p < specs.size(); ++p) {
        const HammingSpec &spec = specs[p];
        const size_t len = spec.masks.size();
        if (len == 0 || len > 64)
            fatal("bit-parallel matcher requires 1..64 pattern "
                  "positions (got %zu)",
                  len);
        if (spec.maxMismatches < 0)
            fatal("negative mismatch budget");
        for (size_t j = 0; j < len; ++j) {
            for (uint8_t c = 0; c < 4; ++c) {
                if (genome::maskMatches(spec.masks[j], c))
                    soa->symbol[c][p] |= 1ULL << j;
            }
            // Genome N never matches a pattern position: symbol[N]=0.
        }
        const size_t hi = std::min(spec.mismatchHi, len);
        for (size_t j = spec.mismatchLo; j < hi; ++j)
            soa->mismatch[p] |= 1ULL << j;
        const uint64_t accept_bit = 1ULL << (len - 1);
        for (size_t k = 0;
             k <= static_cast<size_t>(spec.maxMismatches) &&
             k < soa->rowCount;
             ++k)
            soa->accept[k * soa->width + p] = accept_bit;
        soa->reportId[p] = spec.reportId;
    }
    return soa;
}

namespace detail {

void
shiftOrScanScalar(const ShiftOrSoA &l, uint64_t *rows,
                  std::span<const uint8_t> input, ShiftOrHitFn onHit,
                  void *ctx)
{
    const size_t width = l.width;
    const size_t row_count = l.rowCount;
    for (size_t t = 0; t < input.size(); ++t) {
        const uint8_t c = input[t];
        CRISPR_ASSERT(c < genome::kNumSymbols);
        const uint64_t *sym = l.symbol[c].data();
        for (size_t p = 0; p < width; ++p) {
            const uint64_t match = sym[p];
            uint64_t prev = rows[p];
            const uint64_t r0 = ((prev << 1) | 1ULL) & match;
            rows[p] = r0;
            uint64_t hit = r0 & l.accept[p];
            for (size_t k = 1; k < row_count; ++k) {
                uint64_t &cell = rows[k * width + p];
                const uint64_t cur = cell;
                const uint64_t extended = ((cur << 1) | 1ULL) & match;
                const uint64_t substituted =
                    ((prev << 1) | 1ULL) & l.mismatch[p];
                prev = cur;
                cell = extended | substituted;
                hit |= cell & l.accept[k * width + p];
            }
            if (hit)
                onHit(ctx, static_cast<uint32_t>(p), t);
        }
    }
}

void
anchorScanScalar(const uint8_t *text, size_t count,
                 std::span<const AnchorProbe> anchors,
                 std::vector<uint32_t> &out)
{
    for (size_t s = 0; s < count; ++s) {
        bool alive = true;
        for (const AnchorProbe &a : anchors) {
            if (!a.match[text[s + a.offset]]) {
                alive = false;
                break;
            }
        }
        if (alive)
            out.push_back(static_cast<uint32_t>(s));
    }
}

#if !(CRISPR_SIMD_ENABLED && (defined(__x86_64__) || defined(__i386__)))
// Builds without the vector TUs still link; resolveSimdTier() never
// selects these tiers there, so reaching one is a dispatch bug.
void
shiftOrScanAvx2(const ShiftOrSoA &, uint64_t *,
                std::span<const uint8_t>, ShiftOrHitFn, void *)
{
    fatal("avx2 kernel not compiled in");
}
void
shiftOrScanAvx512(const ShiftOrSoA &, uint64_t *,
                  std::span<const uint8_t>, ShiftOrHitFn, void *)
{
    fatal("avx512 kernel not compiled in");
}
void
anchorScanAvx2(const uint8_t *, size_t, std::span<const AnchorProbe>,
               std::vector<uint32_t> &)
{
    fatal("avx2 kernel not compiled in");
}
void
anchorScanAvx512(const uint8_t *, size_t, std::span<const AnchorProbe>,
                 std::vector<uint32_t> &)
{
    fatal("avx512 kernel not compiled in");
}
#endif

} // namespace detail

SimdShiftOrMatcher::SimdShiftOrMatcher(
    std::shared_ptr<const ShiftOrSoA> layout, SimdTier tier)
    : layout_(std::move(layout)), tier_(tier)
{
    CRISPR_ASSERT(layout_ != nullptr);
    if (!simdTierUsable(tier_))
        fatal("SIMD tier %s is not usable on this host/build",
              simdTierName(tier_));
    rows_.assign(layout_->stateWords(), 0);
}

SimdShiftOrMatcher::SimdShiftOrMatcher(
    std::span<const HammingSpec> specs, SimdTier tier)
    : SimdShiftOrMatcher(buildShiftOrSoA(specs), tier)
{
}

void
SimdShiftOrMatcher::reset()
{
    std::fill(rows_.begin(), rows_.end(), 0);
}

namespace {

struct SinkCtx
{
    const ShiftOrSoA *layout;
    const ReportSink *sink;
    uint64_t base;
};

void
emitHit(void *ctx, uint32_t lane, size_t t)
{
    auto *c = static_cast<SinkCtx *>(ctx);
    if (*c->sink)
        (*c->sink)(c->layout->reportId[lane], c->base + t);
}

} // namespace

void
SimdShiftOrMatcher::scan(std::span<const uint8_t> input,
                         const ReportSink &sink, uint64_t base_offset)
{
    SinkCtx ctx{layout_.get(), &sink, base_offset};
    switch (tier_) {
    case SimdTier::Avx2:
        detail::shiftOrScanAvx2(*layout_, rows_.data(), input,
                                &emitHit, &ctx);
        break;
    case SimdTier::Avx512:
        detail::shiftOrScanAvx512(*layout_, rows_.data(), input,
                                  &emitHit, &ctx);
        break;
    default:
        detail::shiftOrScanScalar(*layout_, rows_.data(), input,
                                  &emitHit, &ctx);
        break;
    }
}

std::vector<automata::ReportEvent>
SimdShiftOrMatcher::scanAll(const genome::Sequence &seq)
{
    reset();
    std::vector<automata::ReportEvent> events;
    scan(seq.codes(), [&](uint32_t id, uint64_t end) {
        events.push_back(automata::ReportEvent{id, end});
    });
    return events;
}

size_t
SimdShiftOrMatcher::stateBytes() const
{
    return rows_.size() * sizeof(uint64_t) + layout_->layoutBytes();
}

} // namespace crispr::hscan
