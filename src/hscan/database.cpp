#include "hscan/database.hpp"

#include <cstring>

#include "common/logging.hpp"
#include "common/serial.hpp"
#include "hscan/dfa_scanner.hpp"
#include "hscan/simd_shiftor.hpp"

namespace crispr::hscan {

namespace {

constexpr uint32_t kMagic = 0x43445348; // "HSDC"
constexpr uint32_t kVersion = 2;

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
get32(const std::vector<uint8_t> &in, size_t &pos)
{
    if (pos + 4 > in.size())
        fatal("database blob truncated");
    uint32_t v = static_cast<uint32_t>(in[pos]) |
                 static_cast<uint32_t>(in[pos + 1]) << 8 |
                 static_cast<uint32_t>(in[pos + 2]) << 16 |
                 static_cast<uint32_t>(in[pos + 3]) << 24;
    pos += 4;
    return v;
}

} // namespace

Database
Database::compile(std::vector<automata::HammingSpec> specs,
                  const DatabaseOptions &opts)
{
    if (specs.empty())
        fatal("cannot compile an empty pattern database");
    Database db;
    db.specs_ = std::move(specs);
    db.opts_ = opts;

    switch (opts.mode) {
      case ScanMode::BitParallel:
        db.effective_ = ScanMode::BitParallel;
        break;
      case ScanMode::Dfa:
      case ScanMode::Auto: {
        DfaOptions dopts;
        dopts.maxStates = opts.maxDfaStates;
        dopts.minimize = opts.minimizeDfa;
        db.dfaProto_ = DfaScanner::compile(db.specs_, dopts);
        if (db.dfaProto_) {
            db.effective_ = ScanMode::Dfa;
        } else if (opts.mode == ScanMode::Dfa) {
            fatal("DFA compilation exceeded the %u-state budget",
                  opts.maxDfaStates);
        } else {
            db.effective_ = ScanMode::BitParallel;
        }
        break;
      }
    }
    if (db.effective_ == ScanMode::BitParallel)
        db.simdLayout_ = buildShiftOrSoA(db.specs_);
    return db;
}

std::vector<uint8_t>
Database::serialize() const
{
    std::vector<uint8_t> out;
    put32(out, kMagic);
    put32(out, kVersion);
    put32(out, static_cast<uint32_t>(opts_.mode));
    put32(out, opts_.maxDfaStates);
    put32(out, opts_.minimizeDfa ? 1 : 0);
    put32(out, static_cast<uint32_t>(effective_));
    put32(out, static_cast<uint32_t>(specs_.size()));
    for (const auto &s : specs_) {
        put32(out, static_cast<uint32_t>(s.masks.size()));
        put32(out, static_cast<uint32_t>(s.maxMismatches));
        put32(out, static_cast<uint32_t>(s.mismatchLo));
        put32(out, static_cast<uint32_t>(
                       std::min<size_t>(s.mismatchHi, UINT32_MAX)));
        put32(out, s.reportId);
        for (auto m : s.masks)
            out.push_back(m);
    }
    return out;
}

Database
Database::deserialize(const std::vector<uint8_t> &blob)
{
    size_t pos = 0;
    if (get32(blob, pos) != kMagic)
        fatal("database blob has wrong magic");
    if (get32(blob, pos) != kVersion)
        fatal("database blob has unsupported version");
    DatabaseOptions opts;
    const uint32_t mode = get32(blob, pos);
    if (mode > static_cast<uint32_t>(ScanMode::BitParallel))
        fatal("database blob has invalid scan mode %u", mode);
    opts.mode = static_cast<ScanMode>(mode);
    opts.maxDfaStates = get32(blob, pos);
    if (opts.maxDfaStates > (1u << 24))
        fatal("database blob DFA budget %u is implausible",
              opts.maxDfaStates);
    opts.minimizeDfa = get32(blob, pos) != 0;
    const uint32_t effective_raw = get32(blob, pos);
    if (effective_raw > static_cast<uint32_t>(ScanMode::BitParallel))
        fatal("database blob has invalid effective mode %u",
              effective_raw);
    ScanMode effective = static_cast<ScanMode>(effective_raw);
    uint32_t count = get32(blob, pos);
    // Every pattern record needs at least its 20-byte fixed header;
    // validate before any allocation sized from untrusted input.
    if (count == 0 || static_cast<uint64_t>(count) * 20 >
                          blob.size() - pos)
        fatal("database blob pattern count %u is implausible", count);

    std::vector<automata::HammingSpec> specs;
    specs.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        automata::HammingSpec s;
        uint32_t len = get32(blob, pos);
        if (len == 0 || len > blob.size() - pos)
            fatal("database blob pattern %u has invalid length %u", i,
                  len);
        const uint32_t mm = get32(blob, pos);
        if (mm > len)
            fatal("database blob pattern %u has mismatch budget %u "
                  "over its length", i, mm);
        s.maxMismatches = static_cast<int>(mm);
        s.mismatchLo = get32(blob, pos);
        uint32_t hi = get32(blob, pos);
        s.mismatchHi = hi == UINT32_MAX ? SIZE_MAX : hi;
        s.reportId = get32(blob, pos);
        if (pos + len > blob.size())
            fatal("database blob truncated in pattern %u", i);
        s.masks.assign(blob.begin() + pos, blob.begin() + pos + len);
        pos += len;
        specs.push_back(std::move(s));
    }
    if (pos != blob.size())
        fatal("database blob has %zu trailing bytes", blob.size() - pos);
    (void)effective; // recompilation below re-derives the effective mode

    return Database::compile(std::move(specs), opts);
}

namespace {

constexpr uint32_t kCompiledFormatVersion = 1;

void
putSpec(common::BlobWriter &w, const automata::HammingSpec &s)
{
    w.u32(static_cast<uint32_t>(s.masks.size()));
    w.u32(static_cast<uint32_t>(s.maxMismatches));
    w.u64(s.mismatchLo);
    w.u64(s.mismatchHi == SIZE_MAX ? UINT64_MAX : s.mismatchHi);
    w.u32(s.reportId);
    w.bytes(s.masks);
}

automata::HammingSpec
getSpec(common::BlobReader &r, uint32_t index)
{
    automata::HammingSpec s;
    const uint32_t len = r.u32();
    const uint32_t mm = r.u32();
    if (r.ok() && (len == 0 || len > r.remaining()))
        r.fail(strprintf("pattern %u has invalid length %u", index,
                         len));
    if (r.ok() && mm > len)
        r.fail(strprintf("pattern %u has mismatch budget %u over its "
                         "length",
                         index, mm));
    s.maxMismatches = static_cast<int>(mm);
    s.mismatchLo = static_cast<size_t>(r.u64());
    const uint64_t hi = r.u64();
    s.mismatchHi = hi == UINT64_MAX ? SIZE_MAX
                                    : static_cast<size_t>(hi);
    s.reportId = r.u32();
    auto masks = r.raw(len);
    s.masks.assign(masks.begin(), masks.end());
    return s;
}

} // namespace

std::vector<uint8_t>
Database::serializeCompiled() const
{
    common::BlobWriter w;
    w.u8(static_cast<uint8_t>(opts_.mode));
    w.u32(opts_.maxDfaStates);
    w.u8(opts_.minimizeDfa ? 1 : 0);
    w.u8(static_cast<uint8_t>(effective_));
    w.u32(static_cast<uint32_t>(specs_.size()));
    for (const auto &s : specs_)
        putSpec(w, s);
    if (dfaProto_) {
        w.u8(1);
        const std::vector<uint8_t> dfa = dfaProto_->dfa().encode();
        w.u32(static_cast<uint32_t>(dfa.size()));
        w.bytes(dfa);
    } else {
        w.u8(0);
    }
    return common::sealBlob("hscan-db", kCompiledFormatVersion,
                            w.buffer());
}

common::Expected<Database>
Database::deserializeCompiled(std::span<const uint8_t> blob)
{
    using common::Error;
    using common::ErrorCode;
    auto payload =
        common::openBlob("hscan-db", kCompiledFormatVersion, blob);
    if (!payload.ok())
        return payload.error();
    common::BlobReader r(payload.value());

    Database db;
    const uint8_t mode = r.u8();
    if (r.ok() && mode > static_cast<uint8_t>(ScanMode::BitParallel))
        r.fail(strprintf("invalid scan mode %u", mode));
    db.opts_.mode = static_cast<ScanMode>(mode);
    db.opts_.maxDfaStates = r.u32();
    db.opts_.minimizeDfa = r.u8() != 0;
    const uint8_t effective = r.u8();
    if (r.ok() &&
        (effective > static_cast<uint8_t>(ScanMode::BitParallel) ||
         effective == static_cast<uint8_t>(ScanMode::Auto)))
        r.fail(strprintf("invalid effective mode %u", effective));
    db.effective_ = static_cast<ScanMode>(effective);
    const uint32_t count = r.u32();
    // Every pattern record needs at least its 24-byte fixed header;
    // validate before any allocation sized from the payload.
    if (r.ok() &&
        (count == 0 || static_cast<uint64_t>(count) * 24 >
                           r.remaining()))
        r.fail(strprintf("pattern count %u is implausible", count));
    if (auto st = r.status(); !st.ok())
        return st.error();
    db.specs_.reserve(count);
    for (uint32_t i = 0; r.ok() && i < count; ++i)
        db.specs_.push_back(getSpec(r, i));

    const uint8_t has_dfa = r.u8();
    if (db.effective_ == ScanMode::Dfa && has_dfa == 0)
        r.fail("DFA-path database blob carries no DFA tables");
    if (has_dfa) {
        const uint32_t dfa_size = r.u32();
        auto dfa_blob = r.raw(dfa_size);
        if (auto st = r.status(); !st.ok())
            return st.error();
        auto dfa = automata::Dfa::decode(dfa_blob);
        if (!dfa.ok())
            return dfa.error();
        db.dfaProto_ = DfaScanner::fromDfa(std::move(dfa).value());
    }
    if (auto st = r.finish(); !st.ok())
        return st.error();
    if (db.effective_ == ScanMode::BitParallel)
        db.simdLayout_ = buildShiftOrSoA(db.specs_);
    return db;
}

std::string
Database::info() const
{
    const char *mode = effective_ == ScanMode::Dfa ? "dfa" : "bit-parallel";
    size_t positions = 0;
    for (const auto &s : specs_)
        positions += s.masks.size();
    return strprintf("hscan db: %zu patterns, %zu positions, path=%s",
                     specs_.size(), positions, mode);
}

} // namespace crispr::hscan
