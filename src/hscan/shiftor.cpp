#include "hscan/shiftor.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::hscan {

using automata::HammingSpec;
using automata::ReportSink;

ShiftOrMatcher::ShiftOrMatcher(std::span<const HammingSpec> specs)
{
    pats_.reserve(specs.size());
    for (const HammingSpec &spec : specs) {
        const size_t len = spec.masks.size();
        if (len == 0 || len > 64)
            fatal("bit-parallel matcher requires 1..64 pattern positions "
                  "(got %zu)", len);
        if (spec.maxMismatches < 0)
            fatal("negative mismatch budget");
        CompiledPattern p{};
        for (size_t j = 0; j < len; ++j) {
            for (uint8_t c = 0; c < 4; ++c) {
                if (genome::maskMatches(spec.masks[j], c))
                    p.symbolMask[c] |= 1ULL << j;
            }
            // Genome N never matches a pattern position: symbolMask[N]=0.
        }
        const size_t hi = std::min(spec.mismatchHi, len);
        for (size_t j = spec.mismatchLo; j < hi; ++j)
            p.mismatchMask |= 1ULL << j;
        p.acceptBit = 1ULL << (len - 1);
        p.reportId = spec.reportId;
        p.maxMismatches = spec.maxMismatches;
        p.rows.assign(static_cast<size_t>(spec.maxMismatches) + 1, 0);
        pats_.push_back(std::move(p));
    }
}

void
ShiftOrMatcher::reset()
{
    for (auto &p : pats_)
        std::fill(p.rows.begin(), p.rows.end(), 0);
}

void
ShiftOrMatcher::scan(std::span<const uint8_t> input, const ReportSink &sink,
                     uint64_t base_offset)
{
    for (size_t t = 0; t < input.size(); ++t) {
        const uint8_t c = input[t];
        CRISPR_ASSERT(c < genome::kNumSymbols);
        for (auto &p : pats_) {
            const uint64_t match = p.symbolMask[c];
            // Row 0: extend by an exact match only.
            uint64_t prev = p.rows[0]; // R_{k-1} before this update
            uint64_t r0 = ((prev << 1) | 1ULL) & match;
            p.rows[0] = r0;
            bool hit = (r0 & p.acceptBit) != 0;
            for (size_t k = 1; k < p.rows.size(); ++k) {
                const uint64_t cur = p.rows[k];
                const uint64_t extended = ((cur << 1) | 1ULL) & match;
                const uint64_t substituted =
                    ((prev << 1) | 1ULL) & p.mismatchMask;
                prev = cur;
                p.rows[k] = extended | substituted;
                hit = hit || (p.rows[k] & p.acceptBit);
            }
            if (hit && sink)
                sink(p.reportId, base_offset + t);
        }
    }
}

std::vector<automata::ReportEvent>
ShiftOrMatcher::scanAll(const genome::Sequence &seq)
{
    reset();
    std::vector<automata::ReportEvent> events;
    scan(seq.codes(), [&](uint32_t id, uint64_t end) {
        events.push_back(automata::ReportEvent{id, end});
    });
    return events;
}

size_t
ShiftOrMatcher::stateBytes() const
{
    size_t bytes = 0;
    for (const auto &p : pats_)
        bytes += sizeof(CompiledPattern) + p.rows.size() * sizeof(uint64_t);
    return bytes;
}

} // namespace crispr::hscan
