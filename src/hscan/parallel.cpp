#include "hscan/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hpp"

namespace crispr::hscan {

using automata::ReportEvent;

std::vector<ReportEvent>
parallelScan(const Database &db, const genome::Sequence &seq,
             const ParallelOptions &options)
{
    size_t max_len = 0;
    for (const auto &spec : db.specs())
        max_len = std::max(max_len, spec.masks.size());
    const size_t overlap = max_len > 0 ? max_len - 1 : 0;

    size_t chunk = options.chunkSize;
    if (chunk <= overlap)
        fatal("parallel chunk size must exceed the pattern length");

    unsigned threads = options.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());

    const size_t n = seq.size();
    std::vector<std::pair<size_t, size_t>> work; // (emit_from, end)
    for (size_t at = 0; at < n; at += chunk)
        work.emplace_back(at, std::min(n, at + chunk));
    if (work.empty())
        return {};

    std::vector<ReportEvent> events;
    std::mutex events_mutex;
    std::atomic<size_t> next{0};

    auto worker = [&] {
        Scanner scanner(db);
        std::vector<ReportEvent> local;
        for (;;) {
            const size_t w = next.fetch_add(1);
            if (w >= work.size())
                break;
            auto [emit_from, end] = work[w];
            const size_t lead =
                emit_from >= overlap ? emit_from - overlap : 0;
            scanner.reset();
            scanner.scan(
                {seq.data() + lead, end - lead},
                [&](uint32_t id, uint64_t at) {
                    if (at >= emit_from)
                        local.push_back(ReportEvent{id, at});
                },
                lead);
        }
        std::lock_guard<std::mutex> lock(events_mutex);
        events.insert(events.end(), local.begin(), local.end());
    };

    std::vector<std::thread> pool;
    const unsigned spawn =
        static_cast<unsigned>(std::min<size_t>(threads, work.size()));
    pool.reserve(spawn);
    for (unsigned t = 0; t < spawn; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    automata::normalizeEvents(events);
    return events;
}

} // namespace crispr::hscan
