#include "hscan/parallel.hpp"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "genome/chunking.hpp"

namespace crispr::hscan {

using automata::ReportEvent;

std::vector<ReportEvent>
parallelScan(const Database &db, const genome::Sequence &seq,
             const ParallelOptions &options)
{
    size_t max_len = 0;
    for (const auto &spec : db.specs())
        max_len = std::max(max_len, spec.masks.size());
    const size_t overlap = max_len > 0 ? max_len - 1 : 0;

    const auto plan =
        genome::planScanChunks(seq.size(), options.chunkSize, overlap);
    if (plan.empty())
        return {};
    const unsigned threads = genome::resolveThreads(options.threads);

    std::vector<ReportEvent> events;
    std::mutex events_mutex;
    std::atomic<size_t> next{0};

    auto worker = [&] {
        Scanner scanner(db);
        std::vector<ReportEvent> local;
        for (;;) {
            const size_t w = next.fetch_add(1);
            if (w >= plan.size())
                break;
            const genome::ScanChunk &c = plan[w];
            scanner.reset();
            scanner.scan(
                {seq.data() + c.leadFrom, c.end - c.leadFrom},
                [&](uint32_t id, uint64_t at) {
                    if (at >= c.emitFrom)
                        local.push_back(ReportEvent{id, at});
                },
                c.leadFrom);
        }
        std::lock_guard<std::mutex> lock(events_mutex);
        events.insert(events.end(), local.begin(), local.end());
    };

    std::vector<std::thread> pool;
    const unsigned spawn =
        static_cast<unsigned>(std::min<size_t>(threads, plan.size()));
    pool.reserve(spawn);
    for (unsigned t = 0; t < spawn; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    automata::normalizeEvents(events);
    return events;
}

} // namespace crispr::hscan
