#include "hscan/parallel.hpp"

#include <memory>
#include <mutex>
#include <vector>

#include "common/executor.hpp"
#include "genome/chunking.hpp"

namespace crispr::hscan {

using automata::ReportEvent;

std::vector<ReportEvent>
parallelScan(const Database &db, const genome::Sequence &seq,
             const ParallelOptions &options)
{
    size_t max_len = 0;
    for (const auto &spec : db.specs())
        max_len = std::max(max_len, spec.masks.size());
    const size_t overlap = max_len > 0 ? max_len - 1 : 0;

    const auto plan =
        genome::planScanChunks(seq.size(), options.chunkSize, overlap);
    if (plan.empty())
        return {};
    const unsigned threads =
        common::Executor::resolveThreads(options.threads);
    const unsigned lanes =
        static_cast<unsigned>(std::min<size_t>(threads, plan.size()));

    // One Scanner clone and event buffer per lane; lanes are created
    // lazily so a mostly-idle pool doesn't pay Scanner construction.
    std::vector<std::unique_ptr<Scanner>> scanners(lanes);
    std::vector<std::vector<ReportEvent>> lane_events(lanes);
    auto body = [&](size_t w, unsigned lane) {
        if (!scanners[lane])
            scanners[lane] = std::make_unique<Scanner>(db);
        Scanner &scanner = *scanners[lane];
        std::vector<ReportEvent> &local = lane_events[lane];
        const genome::ScanChunk &c = plan[w];
        scanner.reset();
        scanner.scan(
            {seq.data() + c.leadFrom, c.end - c.leadFrom},
            [&](uint32_t id, uint64_t at) {
                if (at >= c.emitFrom)
                    local.push_back(ReportEvent{id, at});
            },
            c.leadFrom);
        return true;
    };

    if (lanes <= 1) {
        // Serial bypass: the paper's single-core path never touches
        // the pool.
        for (size_t w = 0; w < plan.size(); ++w)
            body(w, 0);
    } else {
        common::Executor::shared().forIndices(plan.size(), lanes, {},
                                              body);
    }

    std::vector<ReportEvent> events;
    for (std::vector<ReportEvent> &local : lane_events)
        events.insert(events.end(), local.begin(), local.end());
    automata::normalizeEvents(events);
    return events;
}

} // namespace crispr::hscan
