/**
 * @file
 * Compiled pattern database (the analogue of hs_database): a set of
 * Hamming pattern specs compiled once, scanned many times, and
 * serialisable to a byte blob so compilation can be done offline.
 */

#ifndef CRISPR_HSCAN_DATABASE_HPP_
#define CRISPR_HSCAN_DATABASE_HPP_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "automata/builders.hpp"
#include "common/error.hpp"
#include "hscan/dfa_scanner.hpp"

namespace crispr::hscan {

struct ShiftOrSoA;

/** Scan-path selection. */
enum class ScanMode : uint8_t
{
    Auto,        //!< DFA if it fits the state budget, else bit-parallel
    Dfa,         //!< force the DFA path (fatal if over budget)
    BitParallel, //!< force the bit-parallel path
};

/** Compile-time options. */
struct DatabaseOptions
{
    ScanMode mode = ScanMode::Auto;
    uint32_t maxDfaStates = 1u << 17;
    bool minimizeDfa = true;
};

/**
 * The compiled database: pattern specs, the chosen scan path, and (for
 * the DFA path) the compiled automaton, kept so scanners are cheap to
 * spawn.
 */
class Database
{
  public:
    /** Compile a database from pattern specs. */
    static Database compile(std::vector<automata::HammingSpec> specs,
                            const DatabaseOptions &opts = {});

    /** Which path was chosen. */
    ScanMode effectiveMode() const { return effective_; }

    const std::vector<automata::HammingSpec> &specs() const
    {
        return specs_;
    }

    const DatabaseOptions &options() const { return opts_; }

    /** Compiled DFA prototype; engaged iff effectiveMode() == Dfa. */
    const std::optional<DfaScanner> &dfaPrototype() const
    {
        return dfaProto_;
    }

    /**
     * Shared Shift-Or structure-of-arrays layout for the vectorized
     * kernels (simd_shiftor.hpp); engaged iff effectiveMode() ==
     * BitParallel. Built once at compile/deserialize and shared by
     * every Scanner spawned from this database, at any SIMD tier.
     */
    const std::shared_ptr<const ShiftOrSoA> &simdLayout() const
    {
        return simdLayout_;
    }

    /** Serialise to a versioned binary blob (specs + options). */
    std::vector<uint8_t> serialize() const;

    /**
     * Reconstruct from a blob produced by serialize(). Recompiles the
     * scan path (blobs are portable; compiled tables are not).
     */
    static Database deserialize(const std::vector<uint8_t> &blob);

    /**
     * Serialise the *compiled* form: specs + options + the chosen
     * path's artifact — on the DFA path, the dense transition tables
     * themselves. deserializeCompiled() of the blob restores a
     * scan-ready database without re-running subset construction or
     * minimization, which is what makes warm fleet restart a load
     * instead of a compile (the Hyperscan serialized-database idiom).
     */
    std::vector<uint8_t> serializeCompiled() const;

    /**
     * Reconstruct a scan-ready database from a serializeCompiled()
     * blob. @return a typed Error for truncated/corrupt/version-skewed
     * blobs (content-hash envelope; see common/serial.hpp).
     */
    static common::Expected<Database>
    deserializeCompiled(std::span<const uint8_t> blob);

    /** Human-readable one-line summary. */
    std::string info() const;

  private:
    Database() = default;

    std::vector<automata::HammingSpec> specs_;
    DatabaseOptions opts_;
    ScanMode effective_ = ScanMode::BitParallel;
    std::optional<DfaScanner> dfaProto_;
    std::shared_ptr<const ShiftOrSoA> simdLayout_;
};

} // namespace crispr::hscan

#endif // CRISPR_HSCAN_DATABASE_HPP_
