/**
 * @file
 * DFA-based streaming scanner: the HScan fast path. Compiles a set of
 * Hamming pattern specs into a single minimised DFA (one table lookup
 * per input base) when the subset construction stays within a state
 * budget.
 */

#ifndef CRISPR_HSCAN_DFA_SCANNER_HPP_
#define CRISPR_HSCAN_DFA_SCANNER_HPP_

#include <memory>
#include <optional>
#include <span>

#include "automata/builders.hpp"
#include "automata/dfa.hpp"

namespace crispr::hscan {

/** Compilation limits and switches for the DFA path. */
struct DfaOptions
{
    uint32_t maxStates = 1u << 17; //!< subset-construction cap
    bool minimize = true;          //!< run Hopcroft after construction
};

/** Streaming scanner around a compiled DFA. */
class DfaScanner
{
  public:
    /**
     * Compile specs into one DFA. @return std::nullopt if the subset
     * construction exceeded opts.maxStates.
     */
    static std::optional<DfaScanner>
    compile(std::span<const automata::HammingSpec> specs,
            const DfaOptions &opts = {});

    /**
     * Wrap an already-built DFA (a Dfa::decode of a serialized
     * database) without re-running subset construction.
     */
    static DfaScanner
    fromDfa(automata::Dfa dfa)
    {
        return DfaScanner(std::move(dfa));
    }

    /** Reset streaming state to the initial DFA state. */
    void reset() { state_ = 0; }

    /** Consume a chunk, emitting events through `sink`. */
    void
    scan(std::span<const uint8_t> input, const automata::ReportSink &sink,
         uint64_t base_offset = 0)
    {
        state_ = dfa_->scan(input, sink, base_offset, state_);
    }

    /** Whole-sequence convenience scan (resets first). */
    std::vector<automata::ReportEvent>
    scanAll(const genome::Sequence &seq);

    const automata::Dfa &dfa() const { return *dfa_; }

  private:
    explicit DfaScanner(automata::Dfa dfa)
        : dfa_(std::make_shared<automata::Dfa>(std::move(dfa)))
    {}

    std::shared_ptr<automata::Dfa> dfa_; //!< shared: scanner is copyable
    uint32_t state_ = 0;
};

} // namespace crispr::hscan

#endif // CRISPR_HSCAN_DFA_SCANNER_HPP_
