#include "hscan/multipattern.hpp"

#include "common/logging.hpp"

namespace crispr::hscan {

namespace {

std::variant<DfaScanner, ShiftOrMatcher>
makeImpl(const Database &db)
{
    if (db.effectiveMode() == ScanMode::Dfa) {
        CRISPR_ASSERT(db.dfaPrototype().has_value());
        return *db.dfaPrototype();
    }
    return ShiftOrMatcher(db.specs());
}

} // namespace

Scanner::Scanner(const Database &db) : impl_(makeImpl(db)) {}

void
Scanner::reset()
{
    std::visit([](auto &s) { s.reset(); }, impl_);
    stats_ = ScanStats{};
}

void
Scanner::scan(std::span<const uint8_t> input,
              const automata::ReportSink &sink, uint64_t base_offset)
{
    stats_.symbols += input.size();
    auto counting = [&](uint32_t id, uint64_t end) {
        ++stats_.events;
        if (sink)
            sink(id, end);
    };
    std::visit([&](auto &s) { s.scan(input, counting, base_offset); },
               impl_);
}

std::vector<automata::ReportEvent>
Scanner::scanAll(const genome::Sequence &seq)
{
    reset();
    std::vector<automata::ReportEvent> events;
    scan(seq.codes(), [&](uint32_t id, uint64_t end) {
        events.push_back(automata::ReportEvent{id, end});
    });
    return events;
}

ScanMode
Scanner::mode() const
{
    return std::holds_alternative<DfaScanner>(impl_) ? ScanMode::Dfa
                                                     : ScanMode::BitParallel;
}

} // namespace crispr::hscan
