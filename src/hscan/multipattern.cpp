#include "hscan/multipattern.hpp"

#include "common/logging.hpp"

namespace crispr::hscan {

namespace {

using ScannerImpl =
    std::variant<DfaScanner, ShiftOrMatcher, SimdShiftOrMatcher>;

ScannerImpl
makeImpl(const Database &db, SimdTier resolved)
{
    if (db.effectiveMode() == ScanMode::Dfa) {
        CRISPR_ASSERT(db.dfaPrototype().has_value());
        return *db.dfaPrototype();
    }
    if (resolved != SimdTier::Scalar) {
        // The SoA layout is built at database compile time; a
        // database restored through a layout-less path still serves
        // vector scans by compiling the layout here.
        auto layout = db.simdLayout();
        if (!layout)
            layout = buildShiftOrSoA(db.specs());
        return SimdShiftOrMatcher(std::move(layout), resolved);
    }
    return ShiftOrMatcher(db.specs());
}

} // namespace

Scanner::Scanner(const Database &db, SimdTier tier)
    : impl_(makeImpl(db, db.effectiveMode() == ScanMode::Dfa
                             ? SimdTier::Scalar
                             : resolveSimdTier(tier))),
      tier_(std::holds_alternative<SimdShiftOrMatcher>(impl_)
                ? std::get<SimdShiftOrMatcher>(impl_).tier()
                : SimdTier::Scalar)
{
}

void
Scanner::reset()
{
    std::visit([](auto &s) { s.reset(); }, impl_);
    stats_ = ScanStats{};
}

void
Scanner::scan(std::span<const uint8_t> input,
              const automata::ReportSink &sink, uint64_t base_offset)
{
    stats_.symbols += input.size();
    auto counting = [&](uint32_t id, uint64_t end) {
        ++stats_.events;
        if (sink)
            sink(id, end);
    };
    std::visit([&](auto &s) { s.scan(input, counting, base_offset); },
               impl_);
}

std::vector<automata::ReportEvent>
Scanner::scanAll(const genome::Sequence &seq)
{
    reset();
    std::vector<automata::ReportEvent> events;
    scan(seq.codes(), [&](uint32_t id, uint64_t end) {
        events.push_back(automata::ReportEvent{id, end});
    });
    return events;
}

ScanMode
Scanner::mode() const
{
    return std::holds_alternative<DfaScanner>(impl_)
               ? ScanMode::Dfa
               : ScanMode::BitParallel;
}

} // namespace crispr::hscan
