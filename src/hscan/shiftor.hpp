/**
 * @file
 * Bit-parallel Hamming matcher (Baeza-Yates-Gonnet / Wu-Manber shift-and
 * with one machine word per mismatch row). This is the robust path of
 * the HScan engine: O(d+1) word operations per pattern per input symbol,
 * independent of automaton blow-up, for patterns up to 64 positions.
 *
 * Row invariant after consuming text[0..t]: bit j of row R_k is set iff
 * text[t-j .. t] matches pattern[0 .. j] with at most k mismatches,
 * where mismatches are only permitted at positions inside the pattern's
 * mismatch window (the PAM stays exact).
 */

#ifndef CRISPR_HSCAN_SHIFTOR_HPP_
#define CRISPR_HSCAN_SHIFTOR_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "automata/builders.hpp"
#include "automata/interp.hpp"
#include "genome/sequence.hpp"

namespace crispr::hscan {

/** Streaming bit-parallel multi-pattern Hamming matcher. */
class ShiftOrMatcher
{
  public:
    /**
     * Compile a set of Hamming pattern specs. Pattern length must be
     * <= 64. Reports use each spec's reportId; at most one event per
     * (pattern, end position) is emitted, tagged with the minimal
     * mismatch count... (the event carries only id and end; the count
     * is recoverable from the rows but not part of ReportEvent).
     */
    explicit ShiftOrMatcher(
        std::span<const automata::HammingSpec> specs);

    /** Reset all rows to the before-any-input state. */
    void reset();

    /** Consume a chunk of genome codes, emitting report events. */
    void scan(std::span<const uint8_t> input,
              const automata::ReportSink &sink, uint64_t base_offset = 0);

    /** Whole-sequence convenience scan (resets first). */
    std::vector<automata::ReportEvent>
    scanAll(const genome::Sequence &seq);

    size_t patternCount() const { return pats_.size(); }

    /** Bytes of working state (rows + masks), for the E12 microbench. */
    size_t stateBytes() const;

  private:
    struct CompiledPattern
    {
        uint64_t symbolMask[genome::kNumSymbols]; //!< B[c]
        uint64_t mismatchMask;                    //!< positions allowing mm
        uint64_t acceptBit;                       //!< 1 << (len-1)
        uint32_t reportId;
        int maxMismatches;
        std::vector<uint64_t> rows;               //!< d+1 live rows
    };

    std::vector<CompiledPattern> pats_;
};

} // namespace crispr::hscan

#endif // CRISPR_HSCAN_SHIFTOR_HPP_
