#include "hscan/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.hpp"

#ifndef CRISPR_SIMD_ENABLED
#define CRISPR_SIMD_ENABLED 1
#endif

namespace crispr::hscan {

namespace {

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
cpuHasAvx512()
{
#if defined(__x86_64__) || defined(__i386__)
    // The kernels use 512-bit byte shuffles and 64-bit lane ops:
    // foundation + byte/word + vector-length extensions.
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vl");
#else
    return false;
#endif
}

/** CRISPR_SIMD env override; nullopt when unset or unparseable. */
std::optional<SimdTier>
envTier()
{
    const char *env = std::getenv("CRISPR_SIMD");
    if (!env || !*env)
        return std::nullopt;
    auto tier = parseSimdTier(env);
    if (!tier) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("CRISPR_SIMD=%s is not a tier "
                 "(scalar|avx2|avx512|auto); ignoring",
                 env);
        return std::nullopt;
    }
    return tier;
}

} // namespace

const char *
simdTierName(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Auto:
        return "auto";
    case SimdTier::Scalar:
        return "scalar";
    case SimdTier::Avx2:
        return "avx2";
    case SimdTier::Avx512:
        return "avx512";
    }
    return "?";
}

std::optional<SimdTier>
parseSimdTier(std::string_view name)
{
    if (name == "auto")
        return SimdTier::Auto;
    if (name == "scalar")
        return SimdTier::Scalar;
    if (name == "avx2")
        return SimdTier::Avx2;
    if (name == "avx512")
        return SimdTier::Avx512;
    return std::nullopt;
}

bool
simdTierCompiled(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Scalar:
        return true;
    case SimdTier::Avx2:
    case SimdTier::Avx512:
#if CRISPR_SIMD_ENABLED && (defined(__x86_64__) || defined(__i386__))
        return true;
#else
        return false;
#endif
    default:
        return false;
    }
}

bool
simdTierSupported(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Scalar:
        return true;
    case SimdTier::Avx2:
        return cpuHasAvx2();
    case SimdTier::Avx512:
        return cpuHasAvx512();
    default:
        return false;
    }
}

bool
simdTierUsable(SimdTier tier)
{
    return tier != SimdTier::Auto && simdTierCompiled(tier) &&
           simdTierSupported(tier);
}

SimdTier
bestSimdTier()
{
    if (simdTierUsable(SimdTier::Avx512))
        return SimdTier::Avx512;
    if (simdTierUsable(SimdTier::Avx2))
        return SimdTier::Avx2;
    return SimdTier::Scalar;
}

SimdTier
resolveSimdTier(SimdTier requested)
{
    if (auto env = envTier())
        requested = *env;
    if (requested == SimdTier::Auto)
        return bestSimdTier();
    if (simdTierUsable(requested))
        return requested;
    // Degrade to the widest usable tier *below* the request, so a
    // fleet-wide CRISPR_SIMD=avx512 runs avx2 on older hosts and a
    // CRISPR_SIMD=avx2 on a non-AVX box runs scalar.
    SimdTier usable = SimdTier::Scalar;
    if (requested == SimdTier::Avx512 && simdTierUsable(SimdTier::Avx2))
        usable = SimdTier::Avx2;
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
        warn("SIMD tier %s is unavailable on this host/build; "
             "degrading to %s",
             simdTierName(requested), simdTierName(usable));
    return usable;
}

double
simdTierGaugeValue(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Avx2:
        return 1.0;
    case SimdTier::Avx512:
        return 2.0;
    default:
        return 0.0;
    }
}

} // namespace crispr::hscan
