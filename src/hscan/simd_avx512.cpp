/**
 * @file
 * AVX-512 kernels (this TU alone is built with -mavx512f -mavx512bw
 * -mavx512vl; callers reach it only through resolveSimdTier-gated
 * dispatch):
 *
 *  - shiftOrScanAvx512: 8 pattern lanes of 64 bits per vector, hit
 *    detection folded into mask registers.
 *  - anchorScanAvx512: 64 genome positions per iteration via 512-bit
 *    byte shuffles (avx512bw).
 */

#if CRISPR_SIMD_ENABLED && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "hscan/simd_kernels.hpp"

namespace crispr::hscan::detail {

void
shiftOrScanAvx512(const ShiftOrSoA &l, uint64_t *rows,
                  std::span<const uint8_t> input, ShiftOrHitFn onHit,
                  void *ctx)
{
    const size_t width = l.width;
    const size_t row_count = l.rowCount;
    const __m512i one = _mm512_set1_epi64(1);
    for (size_t t = 0; t < input.size(); ++t) {
        const uint64_t *sym = l.symbol[input[t]].data();
        for (size_t p = 0; p < width; p += 8) {
            const __m512i match = _mm512_loadu_si512(sym + p);
            __m512i prev = _mm512_loadu_si512(rows + p);
            const __m512i r0 = _mm512_and_si512(
                _mm512_or_si512(_mm512_slli_epi64(prev, 1), one),
                match);
            _mm512_storeu_si512(rows + p, r0);
            __mmask8 hit = _mm512_test_epi64_mask(
                r0, _mm512_loadu_si512(l.accept.data() + p));
            const __m512i mm =
                _mm512_loadu_si512(l.mismatch.data() + p);
            for (size_t k = 1; k < row_count; ++k) {
                uint64_t *rk = rows + k * width + p;
                const __m512i cur = _mm512_loadu_si512(rk);
                const __m512i extended = _mm512_and_si512(
                    _mm512_or_si512(_mm512_slli_epi64(cur, 1), one),
                    match);
                const __m512i substituted = _mm512_and_si512(
                    _mm512_or_si512(_mm512_slli_epi64(prev, 1), one),
                    mm);
                prev = cur;
                const __m512i next =
                    _mm512_or_si512(extended, substituted);
                _mm512_storeu_si512(rk, next);
                hit = static_cast<__mmask8>(
                    hit | _mm512_test_epi64_mask(
                              next, _mm512_loadu_si512(
                                        l.accept.data() + k * width +
                                        p)));
            }
            while (hit) {
                const uint32_t lane = static_cast<uint32_t>(
                    __builtin_ctz(static_cast<unsigned>(hit)));
                onHit(ctx, static_cast<uint32_t>(p) + lane, t);
                hit = static_cast<__mmask8>(hit & (hit - 1));
            }
        }
    }
}

void
anchorScanAvx512(const uint8_t *text, size_t count,
                 std::span<const AnchorProbe> anchors,
                 std::vector<uint32_t> &out)
{
    const size_t blocks = count / 64;
    for (size_t b = 0; b < blocks; ++b) {
        const size_t s0 = b * 64;
        __m512i alive = _mm512_set1_epi8(static_cast<char>(0xff));
        for (const AnchorProbe &a : anchors) {
            const __m512i lut = _mm512_broadcast_i32x4(
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                    a.match.data())));
            const __m512i codes =
                _mm512_loadu_si512(text + s0 + a.offset);
            // Genome codes are 0..4 < 16: the LUT probe is exact.
            alive = _mm512_and_si512(alive,
                                     _mm512_shuffle_epi8(lut, codes));
        }
        uint64_t survivors =
            ~_mm512_cmpeq_epi8_mask(alive, _mm512_setzero_si512());
        while (survivors) {
            const uint32_t lane =
                static_cast<uint32_t>(__builtin_ctzll(survivors));
            out.push_back(static_cast<uint32_t>(s0) + lane);
            survivors &= survivors - 1;
        }
    }
    // Scalar tail: positions that do not fill a 64-wide block.
    const size_t tail0 = blocks * 64;
    for (size_t s = tail0; s < count; ++s) {
        bool alive = true;
        for (const AnchorProbe &a : anchors) {
            if (!a.match[text[s + a.offset]]) {
                alive = false;
                break;
            }
        }
        if (alive)
            out.push_back(static_cast<uint32_t>(s));
    }
}

} // namespace crispr::hscan::detail

#endif // CRISPR_SIMD_ENABLED && x86
