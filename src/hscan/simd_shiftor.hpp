/**
 * @file
 * Vectorized multi-pattern Shift-Or: the bit-parallel Hamming kernel
 * of shiftor.hpp re-laid-out structure-of-arrays so one vector lane
 * carries one pattern's 64-bit row. Every (pattern, row) update in the
 * scalar recurrence reads only *old* row values, so all lanes of all
 * rows advance in lock-step from the previous symbol's state — the
 * scalar, AVX2 (4 pattern lanes), and AVX-512 (8 pattern lanes)
 * kernels execute the identical recurrence and are bit-identical by
 * construction (and by the SIMD conformance matrix).
 *
 * The SoA layout is tier-independent: it is built once per compiled
 * Database and shared by every Scanner at any tier; only the per-scan
 * row state is per-matcher.
 */

#ifndef CRISPR_HSCAN_SIMD_SHIFTOR_HPP_
#define CRISPR_HSCAN_SIMD_SHIFTOR_HPP_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "automata/builders.hpp"
#include "automata/interp.hpp"
#include "genome/sequence.hpp"
#include "hscan/simd.hpp"

namespace crispr::hscan {

/**
 * Structure-of-arrays compiled form of a Shift-Or pattern set. All
 * per-pattern arrays are padded to `width` lanes (a multiple of the
 * widest vector width, 8) with all-zero symbol masks and accept bits,
 * so padded lanes can never report.
 */
struct ShiftOrSoA
{
    size_t patterns = 0; //!< real pattern count
    size_t width = 0;    //!< padded lane count (multiple of 8)
    size_t rowCount = 0; //!< max(maxMismatches)+1 over the set

    /** symbol[c][p] = B_p[c]; symbol[N] is all zero. */
    std::vector<uint64_t> symbol[genome::kNumSymbols];
    std::vector<uint64_t> mismatch; //!< mismatch-window mask per lane
    /**
     * accept[k*width + p]: the pattern's accept bit when row k is
     * inside its mismatch budget, else 0 — this is what lets patterns
     * with different d share one rectangular row block.
     */
    std::vector<uint64_t> accept;
    std::vector<uint32_t> reportId; //!< per lane (0 for padding)

    size_t stateWords() const { return rowCount * width; }
    size_t layoutBytes() const;
};

/** Build the shared SoA layout for a spec set (each len 1..64). */
std::shared_ptr<const ShiftOrSoA>
buildShiftOrSoA(std::span<const automata::HammingSpec> specs);

/**
 * Streaming vectorized Shift-Or matcher over a shared SoA layout.
 * Interface-compatible with ShiftOrMatcher; the kernel is chosen by
 * the (already resolved) tier passed at construction.
 */
class SimdShiftOrMatcher
{
  public:
    /** @param tier a concrete usable tier (not Auto) from
     *  resolveSimdTier(); fatal on Auto. */
    SimdShiftOrMatcher(std::shared_ptr<const ShiftOrSoA> layout,
                       SimdTier tier);

    /** Compile specs and pick a tier in one step (tests, benches). */
    SimdShiftOrMatcher(std::span<const automata::HammingSpec> specs,
                       SimdTier tier);

    /** Reset all rows to the before-any-input state. */
    void reset();

    /** Consume a chunk of genome codes, emitting report events. */
    void scan(std::span<const uint8_t> input,
              const automata::ReportSink &sink,
              uint64_t base_offset = 0);

    /** Whole-sequence convenience scan (resets first). */
    std::vector<automata::ReportEvent>
    scanAll(const genome::Sequence &seq);

    size_t patternCount() const { return layout_->patterns; }
    SimdTier tier() const { return tier_; }

    /** Bytes of working state (rows + shared layout). */
    size_t stateBytes() const;

  private:
    std::shared_ptr<const ShiftOrSoA> layout_;
    SimdTier tier_;
    std::vector<uint64_t> rows_; //!< rowCount x width, row-major
};

} // namespace crispr::hscan

#endif // CRISPR_HSCAN_SIMD_SHIFTOR_HPP_
