/**
 * @file
 * ANML serialisation of full AP machines — STEs plus the counter and
 * boolean elements the plain automata ANML writer cannot express.
 * Round-trip safe (writer output parses back to an identical machine).
 */

#ifndef CRISPR_AP_ANML_HPP_
#define CRISPR_AP_ANML_HPP_

#include <iosfwd>
#include <string>

#include "ap/machine.hpp"

namespace crispr::ap {

/** Serialise a machine as ANML-style XML. */
void writeMachineAnml(std::ostream &out, const ApMachine &machine,
                      const std::string &network_id = "offtarget");

/** Serialise to a string. */
std::string machineAnmlString(const ApMachine &machine,
                              const std::string &network_id =
                                  "offtarget");

/** Parse ANML produced by writeMachineAnml(). */
ApMachine readMachineAnml(std::istream &in);

/** Parse from a string. */
ApMachine machineAnmlFromString(const std::string &text);

} // namespace crispr::ap

#endif // CRISPR_AP_ANML_HPP_
