/**
 * @file
 * Cycle-level Automata Processor simulator: executes an ApMachine one
 * input symbol per clock, models the output event buffer (the reporting
 * bottleneck characterised by Wadden et al., HPCA'18), and converts
 * cycles to time at the D480's 133 MHz symbol rate.
 */

#ifndef CRISPR_AP_SIMULATOR_HPP_
#define CRISPR_AP_SIMULATOR_HPP_

#include <cstdint>
#include <vector>

#include "ap/machine.hpp"
#include "automata/interp.hpp"
#include "genome/sequence.hpp"

namespace crispr::ap {

/** Simulator configuration (device timing + reporting architecture). */
struct ApSimConfig
{
    double clockHz = 133.33e6; //!< D480 symbol rate

    /**
     * Output event buffer model: each cycle with >= 1 report consumes
     * one event-vector slot; the host drains one slot every
     * `drainCyclesPerVector` cycles; a full buffer stalls the input
     * stream. Depth 0 disables the model (infinite buffer).
     */
    uint32_t eventBufferDepth = 1024;
    uint32_t drainCyclesPerVector = 8;
};

/** Statistics of one simulated run. */
struct ApRunStats
{
    uint64_t symbolCycles = 0;   //!< one per input symbol
    uint64_t stallCycles = 0;    //!< output-buffer back-pressure
    uint64_t reportingCycles = 0; //!< cycles with >= 1 report
    uint64_t reportEvents = 0;
    uint64_t steActivations = 0; //!< total STE firings (energy proxy)

    uint64_t totalCycles() const { return symbolCycles + stallCycles; }
};

/** The simulator. Construct once per machine; run() is re-entrant. */
class ApSimulator
{
  public:
    explicit ApSimulator(const ApMachine &machine,
                         const ApSimConfig &config = {});

    /**
     * Stream `input` through the machine from the reset state.
     * @param sink receives (reportId, symbol index) events.
     * @return run statistics, including modelled stall cycles.
     */
    ApRunStats run(std::span<const uint8_t> input,
                   const automata::ReportSink &sink);

    /** Convenience: run and collect normalised events. */
    std::vector<automata::ReportEvent>
    scanAll(const genome::Sequence &seq);

    /** Kernel time of a run at the configured clock. */
    double
    kernelSeconds(const ApRunStats &stats) const
    {
        return static_cast<double>(stats.totalCycles()) / config_.clockHz;
    }

    const ApSimConfig &config() const { return config_; }

  private:
    const ApMachine &machine_;
    ApSimConfig config_;

    // Flattened wiring, grouped by destination kind/port.
    std::vector<std::vector<ElemId>> steIn_;      // per STE: sources
    struct CounterWiring
    {
        ElemId counter;
        std::vector<ElemId> countUp;
        std::vector<ElemId> reset;
    };
    std::vector<CounterWiring> counters_;
    struct GateWiring
    {
        ElemId gate;
        std::vector<std::pair<ElemId, bool>> inputs; // (src, inverted)
    };
    std::vector<GateWiring> gates_;
};

} // namespace crispr::ap

#endif // CRISPR_AP_SIMULATOR_HPP_
