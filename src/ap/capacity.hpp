/**
 * @file
 * Automata Processor capacity and timing model, parameterised on the
 * published D480 architecture: STEs arranged in 256-STE blocks, 192
 * blocks per chip (49,152 STEs), 768 counters and 2,304 boolean cells
 * per chip, 8 chips per rank, 4 ranks per PCIe board, 133 MHz symbol
 * rate. Used for E2 (capacity), E5/E6 (kernel time) and E9 (end-to-end
 * breakdown).
 */

#ifndef CRISPR_AP_CAPACITY_HPP_
#define CRISPR_AP_CAPACITY_HPP_

#include <cstdint>
#include <vector>

#include "ap/machine.hpp"

namespace crispr::ap {

/** Device architecture constants (defaults: Micron D480). */
struct ApDeviceSpec
{
    uint32_t stesPerBlock = 256;
    uint32_t blocksPerChip = 192;
    uint32_t countersPerChip = 768;
    uint32_t gatesPerChip = 2304;
    uint32_t chipsPerRank = 8;
    uint32_t ranksPerBoard = 4;
    double clockHz = 133.33e6;

    /** One-time automaton load (flow-through configuration), seconds. */
    double configureSeconds = 0.05;
    /** Active power per chip (published D480 estimate ~4 W). */
    double wattsPerChip = 4.0;
    /** Host->board input streaming bandwidth (DDR interface), bytes/s. */
    double inputBandwidth = 1.0e9;

    uint32_t stesPerChip() const { return stesPerBlock * blocksPerChip; }
    uint32_t chipsPerBoard() const { return chipsPerRank * ranksPerBoard; }
    uint64_t
    stesPerBoard() const
    {
        return static_cast<uint64_t>(stesPerChip()) * chipsPerBoard();
    }
};

/** Placement result for a set of automata on one board. */
struct Placement
{
    uint64_t stes = 0;      //!< STEs requested
    uint64_t counters = 0;
    uint64_t gates = 0;
    uint64_t blocksUsed = 0;
    uint32_t chipsUsed = 0;
    bool fits = false;       //!< everything placed on one board
    uint32_t passes = 1;     //!< reconfiguration passes if it does not fit
    double utilization = 0.0; //!< STEs / (blocksUsed * stesPerBlock)
};

/**
 * Place a set of automata (given as per-automaton resource stats) onto
 * a board: connected components are packed into blocks first-fit (a
 * component larger than a block spans whole blocks, modelling routing
 * constraints); counters/gates are chip-level resources.
 */
Placement placeMachines(const std::vector<MachineStats> &machines,
                        const ApDeviceSpec &spec = {});

/** How many identical automata of the given size fit on one board. */
uint64_t machinesPerBoard(const MachineStats &one,
                          const ApDeviceSpec &spec = {});

/** End-to-end time decomposition of an AP run. */
struct ApTimeBreakdown
{
    double configureSeconds = 0.0; //!< per-pass automaton load
    double kernelSeconds = 0.0;    //!< symbol + stall cycles
    double outputSeconds = 0.0;    //!< result read-back
    double
    totalSeconds() const
    {
        return configureSeconds + kernelSeconds + outputSeconds;
    }
};

/**
 * Analytic run-time estimate (used when full cycle simulation is not
 * needed): passes * symbols / clock plus configuration per pass and
 * output drain proportional to report events.
 */
ApTimeBreakdown estimateRun(uint64_t symbols, uint64_t report_events,
                            uint32_t passes,
                            const ApDeviceSpec &spec = {});

} // namespace crispr::ap

#endif // CRISPR_AP_CAPACITY_HPP_
