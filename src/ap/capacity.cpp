#include "ap/capacity.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::ap {

Placement
placeMachines(const std::vector<MachineStats> &machines,
              const ApDeviceSpec &spec)
{
    Placement p;
    // Blocks are filled first-fit with whole automata; an automaton
    // larger than a block occupies ceil(s/256) dedicated blocks (the
    // routing matrix does not share split blocks with other automata).
    uint64_t open_block_free = 0; // free STEs in the currently open block
    for (const MachineStats &m : machines) {
        p.stes += m.stes;
        p.counters += m.counters;
        p.gates += m.gates;
        const uint64_t s = m.stes;
        if (s == 0)
            continue;
        if (s > spec.stesPerBlock) {
            p.blocksUsed += (s + spec.stesPerBlock - 1) / spec.stesPerBlock;
            // Spanning automata close the open block? No: unrelated
            // blocks remain usable; keep the open block as is.
            continue;
        }
        if (s <= open_block_free) {
            open_block_free -= s;
        } else {
            ++p.blocksUsed;
            open_block_free = spec.stesPerBlock - s;
        }
    }

    const uint64_t blocks_per_chip = spec.blocksPerChip;
    uint64_t chips_for_blocks =
        (p.blocksUsed + blocks_per_chip - 1) / blocks_per_chip;
    uint64_t chips_for_counters =
        spec.countersPerChip
            ? (p.counters + spec.countersPerChip - 1) / spec.countersPerChip
            : 0;
    uint64_t chips_for_gates =
        spec.gatesPerChip
            ? (p.gates + spec.gatesPerChip - 1) / spec.gatesPerChip
            : 0;
    uint64_t chips = std::max({chips_for_blocks, chips_for_counters,
                               chips_for_gates, uint64_t{machines.empty()
                                                             ? 0
                                                             : 1}});
    p.chipsUsed = static_cast<uint32_t>(
        std::min<uint64_t>(chips, UINT32_MAX));
    p.fits = chips <= spec.chipsPerBoard();
    p.passes = p.fits ? 1
                      : static_cast<uint32_t>(
                            (chips + spec.chipsPerBoard() - 1) /
                            spec.chipsPerBoard());
    p.utilization =
        p.blocksUsed
            ? static_cast<double>(p.stes) /
                  (static_cast<double>(p.blocksUsed) * spec.stesPerBlock)
            : 0.0;
    return p;
}

uint64_t
machinesPerBoard(const MachineStats &one, const ApDeviceSpec &spec)
{
    if (one.stes == 0)
        return 0;
    // Per block: how many copies fit (or how many blocks one copy needs).
    double copies_per_chip;
    if (one.stes <= spec.stesPerBlock) {
        const uint64_t per_block = spec.stesPerBlock / one.stes;
        copies_per_chip =
            static_cast<double>(per_block) * spec.blocksPerChip;
    } else {
        const uint64_t blocks =
            (one.stes + spec.stesPerBlock - 1) / spec.stesPerBlock;
        copies_per_chip =
            static_cast<double>(spec.blocksPerChip / blocks);
    }
    if (one.counters > 0) {
        copies_per_chip = std::min(
            copies_per_chip,
            static_cast<double>(spec.countersPerChip / one.counters));
    }
    if (one.gates > 0) {
        copies_per_chip = std::min(
            copies_per_chip,
            static_cast<double>(spec.gatesPerChip / one.gates));
    }
    return static_cast<uint64_t>(copies_per_chip) * spec.chipsPerBoard();
}

ApTimeBreakdown
estimateRun(uint64_t symbols, uint64_t report_events, uint32_t passes,
            const ApDeviceSpec &spec)
{
    CRISPR_ASSERT(passes >= 1);
    ApTimeBreakdown t;
    t.configureSeconds = spec.configureSeconds * passes;
    const double stream =
        static_cast<double>(symbols) / spec.clockHz;
    const double input_bw =
        static_cast<double>(symbols) / spec.inputBandwidth;
    t.kernelSeconds = std::max(stream, input_bw) * passes;
    // Each report event is a 64-bit (id, offset) record read back over
    // PCIe; drain overlaps the stream, only the tail is exposed.
    t.outputSeconds = static_cast<double>(report_events) * 8.0 / 1.5e9;
    return t;
}

} // namespace crispr::ap
