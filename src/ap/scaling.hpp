/**
 * @file
 * Models of the paper's proposed methods to further improve spatial
 * off-target search, and of the architectural modifications it
 * suggests for future automata-processing hardware:
 *
 *  - genome striping: split the input stream across D devices (each
 *    scans 1/D of the genome plus a pattern-length overlap);
 *  - pattern partitioning: split the automata across D devices that
 *    each scan the whole stream concurrently (capacity scaling without
 *    extra passes);
 *  - input striding: consume k symbols per cycle by compiling the
 *    automaton over the k-th power alphabet — rate x k at an STE
 *    inflation cost (the "future hardware" modification);
 *  - faster report path: see fpga/report.hpp.
 */

#ifndef CRISPR_AP_SCALING_HPP_
#define CRISPR_AP_SCALING_HPP_

#include <cstdint>

#include "ap/capacity.hpp"

namespace crispr::ap {

/** Estimate of one scaling option. */
struct ScalingEstimate
{
    double kernelSeconds = 0.0;
    uint32_t devices = 1;
    uint32_t passesPerDevice = 1;
    double steInflation = 1.0; //!< STE cost multiplier vs baseline
};

/**
 * Baseline: one board, possibly multiple reconfiguration passes.
 * `total_stes` is the design's STE demand; block-granular placement is
 * approximated by `stes_per_machine` (one automaton's size).
 */
ScalingEstimate estimateBaseline(uint64_t symbols, uint64_t total_stes,
                                 uint64_t stes_per_machine,
                                 const ApDeviceSpec &spec = {});

/**
 * Genome striping across `devices` boards: each board holds the whole
 * design (so per-board passes are unchanged) and scans
 * symbols/devices + overlap.
 */
ScalingEstimate estimateStriping(uint64_t symbols, uint64_t overlap,
                                 uint32_t devices, uint64_t total_stes,
                                 uint64_t stes_per_machine,
                                 const ApDeviceSpec &spec = {});

/**
 * Pattern partitioning across `devices` boards: each board holds 1/D
 * of the design and scans the whole stream; eliminates passes while
 * the per-board share fits.
 */
ScalingEstimate estimatePartition(uint64_t symbols, uint32_t devices,
                                  uint64_t total_stes,
                                  uint64_t stes_per_machine,
                                  const ApDeviceSpec &spec = {});

/**
 * STE inflation of the stride-k alphabet-power transform for the
 * mismatch-matrix design: each state's 5-symbol class becomes a
 * 5^k-pair class and the k-step transition relation needs ~k
 * intermediate variants per state; empirically modelled as
 * inflation(k) = k + 0.3 * (k - 1) (calibrated against hand-derived
 * stride-2 constructions of chain automata).
 */
double strideInflation(uint32_t k);

/**
 * Input striding at factor k: symbol rate x k, STE demand x
 * strideInflation(k), possibly pushing the design into more passes.
 */
ScalingEstimate estimateStride(uint64_t symbols, uint32_t k,
                               uint64_t total_stes,
                               uint64_t stes_per_machine,
                               const ApDeviceSpec &spec = {});

} // namespace crispr::ap

#endif // CRISPR_AP_SCALING_HPP_
