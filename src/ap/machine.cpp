#include "ap/machine.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::ap {

using automata::Nfa;
using automata::StartKind;
using automata::SymbolClass;

ElemId
ApMachine::addSte(SymbolClass cls, StartKind start, std::string name)
{
    Element e;
    e.kind = ElemKind::Ste;
    e.cls = cls;
    e.start = start;
    e.name = std::move(name);
    elems_.push_back(std::move(e));
    return static_cast<ElemId>(elems_.size() - 1);
}

ElemId
ApMachine::addCounter(uint32_t target, CounterMode mode, std::string name)
{
    if (target == 0)
        fatal("counter target must be >= 1");
    Element e;
    e.kind = ElemKind::Counter;
    e.target = target;
    e.mode = mode;
    e.name = std::move(name);
    elems_.push_back(std::move(e));
    return static_cast<ElemId>(elems_.size() - 1);
}

ElemId
ApMachine::addGate(GateType type, std::string name)
{
    Element e;
    e.kind = ElemKind::Gate;
    e.gate = type;
    e.name = std::move(name);
    elems_.push_back(std::move(e));
    return static_cast<ElemId>(elems_.size() - 1);
}

void
ApMachine::setReport(ElemId e, uint32_t report_id)
{
    CRISPR_ASSERT(e < elems_.size());
    elems_[e].report = true;
    elems_[e].reportId = report_id;
}

void
ApMachine::connect(ElemId from, ElemId to, Port port, bool inverted)
{
    CRISPR_ASSERT(from < elems_.size() && to < elems_.size());
    wires_.push_back(Wire{from, to, port, inverted});
}

MachineStats
ApMachine::stats() const
{
    MachineStats st;
    for (const Element &e : elems_) {
        switch (e.kind) {
          case ElemKind::Ste:
            ++st.stes;
            break;
          case ElemKind::Counter:
            ++st.counters;
            break;
          case ElemKind::Gate:
            ++st.gates;
            break;
        }
    }
    st.wires = wires_.size();
    return st;
}

void
ApMachine::validate() const
{
    for (const Wire &w : wires_) {
        const Element &src = elems_[w.from];
        const Element &dst = elems_[w.to];
        switch (dst.kind) {
          case ElemKind::Ste:
            if (w.port != Port::In)
                fatal("STE '%s' driven on a non-In port",
                      dst.name.c_str());
            if (w.inverted)
                fatal("STE inputs cannot be inverted");
            break;
          case ElemKind::Counter:
            if (w.port == Port::In)
                fatal("counter '%s' must be driven on CountUp or Reset",
                      dst.name.c_str());
            if (w.inverted)
                fatal("counter inputs cannot be inverted");
            break;
          case ElemKind::Gate:
            if (w.port != Port::In)
                fatal("gate '%s' driven on a non-In port",
                      dst.name.c_str());
            if (src.kind == ElemKind::Gate)
                fatal("gate-to-gate wiring is not supported "
                      "(single combinational layer)");
            break;
        }
    }
    for (ElemId e = 0; e < elems_.size(); ++e) {
        if (elems_[e].kind != ElemKind::Gate)
            continue;
        bool has_input = false;
        for (const Wire &w : wires_)
            if (w.to == e)
                has_input = true;
        if (!has_input)
            fatal("gate '%s' has no inputs", elems_[e].name.c_str());
    }
}

ApMachine
fromNfa(const Nfa &nfa)
{
    ApMachine m;
    for (automata::StateId s = 0; s < nfa.size(); ++s) {
        const auto &st = nfa.state(s);
        ElemId e = m.addSte(st.cls, st.start);
        if (st.report)
            m.setReport(e, st.reportId);
    }
    for (automata::StateId s = 0; s < nfa.size(); ++s)
        for (automata::StateId t : nfa.state(s).out)
            m.connect(s, t);
    m.validate();
    return m;
}

ApMachine
buildCounterMachine(const automata::HammingSpec &spec)
{
    const size_t len = spec.masks.size();
    const size_t lo = spec.mismatchLo;
    const size_t hi = std::min(spec.mismatchHi, len);
    if (lo == 0)
        fatal("counter design requires a leading exact region "
              "(PAM-first pattern orientation)");
    if (lo >= len)
        fatal("counter design requires a non-empty mismatch region");
    if (hi != len)
        fatal("counter design requires the mismatch region to extend to "
              "the pattern end");
    if (spec.maxMismatches < 0)
        fatal("negative mismatch budget");

    ApMachine m;

    // PAM trigger chain: exact-match STEs over positions [0, lo).
    ElemId prev = kInvalidElem;
    for (size_t j = 0; j < lo; ++j) {
        ElemId ste = m.addSte(SymbolClass::match(spec.masks[j]),
                              j == 0 ? StartKind::AllInput
                                     : StartKind::None,
                              strprintf("pam%zu", j));
        if (prev != kInvalidElem)
            m.connect(prev, ste);
        prev = ste;
    }
    const ElemId trigger = prev;

    // Counter: latches once mismatches exceed the budget.
    const ElemId counter = m.addCounter(
        static_cast<uint32_t>(spec.maxMismatches) + 1, CounterMode::Latch,
        "mm_counter");
    // A fresh candidate resets the count.
    m.connect(trigger, counter, Port::Reset);

    // Position chain (consumes any symbol) and mismatch detectors.
    ElemId chain_prev = trigger;
    ElemId chain_last = kInvalidElem;
    for (size_t j = lo; j < len; ++j) {
        ElemId chain = m.addSte(SymbolClass::any(), StartKind::None,
                                strprintf("pos%zu", j));
        ElemId det = m.addSte(SymbolClass::mismatch(spec.masks[j]),
                              StartKind::None, strprintf("mm%zu", j));
        m.connect(chain_prev, chain);
        m.connect(chain_prev, det);
        m.connect(det, counter, Port::CountUp);
        chain_prev = chain;
        chain_last = chain;
    }

    // Report gate: chain end AND NOT(counter latched).
    const ElemId gate = m.addGate(GateType::And, "report");
    m.connect(chain_last, gate);
    m.connect(counter, gate, Port::In, /*inverted=*/true);
    m.setReport(gate, spec.reportId);

    m.validate();
    return m;
}

void
mergeMachines(ApMachine &dst, const ApMachine &other)
{
    const ElemId offset = static_cast<ElemId>(dst.size());
    for (const Element &e : other.elements()) {
        ElemId id = kInvalidElem;
        switch (e.kind) {
          case ElemKind::Ste:
            id = dst.addSte(e.cls, e.start, e.name);
            break;
          case ElemKind::Counter:
            id = dst.addCounter(e.target, e.mode, e.name);
            break;
          case ElemKind::Gate:
            id = dst.addGate(e.gate, e.name);
            break;
        }
        if (e.report)
            dst.setReport(id, e.reportId);
    }
    for (const Wire &w : other.wires())
        dst.connect(w.from + offset, w.to + offset, w.port, w.inverted);
}

} // namespace crispr::ap
