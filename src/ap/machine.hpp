/**
 * @file
 * Micron Automata Processor machine model: a network of state
 * transition elements (STEs), saturating counter elements, and
 * combinational boolean gates, as exposed by ANML.
 *
 * Two machine builders matter for the paper:
 *  - fromNfa(): direct mapping of the mismatch-matrix automaton
 *    (STEs only);
 *  - buildCounterMachine(): the AP-specific counter design — a PAM
 *    trigger chain, an L-deep position chain, L mismatch-detector STEs
 *    pulsing one counter, and an AND-NOT report gate. O(L) STEs instead
 *    of O(L*d). Its documented limitation: overlapping trigger windows
 *    share the counter, so candidates closer than one window length can
 *    be mis-counted (quantified by the E11 ablation).
 */

#ifndef CRISPR_AP_MACHINE_HPP_
#define CRISPR_AP_MACHINE_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/builders.hpp"
#include "automata/nfa.hpp"

namespace crispr::ap {

using ElemId = uint32_t;

inline constexpr ElemId kInvalidElem = 0xffffffffu;

/** Element kinds available on the AP fabric. */
enum class ElemKind : uint8_t
{
    Ste,
    Counter,
    Gate,
};

/** Counter output behaviour. */
enum class CounterMode : uint8_t
{
    Pulse, //!< output active only on the cycle the target is reached
    Latch, //!< output stays active from target until reset
};

/** Boolean gate function over its (optionally inverted) inputs. */
enum class GateType : uint8_t
{
    And,
    Or,
};

/** Input port of an element. */
enum class Port : uint8_t
{
    In,      //!< STE enable / gate input
    CountUp, //!< counter increment
    Reset,   //!< counter reset (dominant over CountUp)
};

/** A connection in the machine. */
struct Wire
{
    ElemId from;
    ElemId to;
    Port port = Port::In;
    bool inverted = false; //!< gate inputs only
};

/** One fabric element. */
struct Element
{
    ElemKind kind = ElemKind::Ste;
    std::string name;

    // STE fields.
    automata::SymbolClass cls;
    automata::StartKind start = automata::StartKind::None;

    // Counter fields.
    uint32_t target = 0;
    CounterMode mode = CounterMode::Latch;

    // Gate fields.
    GateType gate = GateType::And;

    bool report = false;
    uint32_t reportId = 0;
};

/** Resource usage of a machine (for the capacity model). */
struct MachineStats
{
    size_t stes = 0;
    size_t counters = 0;
    size_t gates = 0;
    size_t wires = 0;
};

/** An AP automaton network. */
class ApMachine
{
  public:
    ElemId addSte(automata::SymbolClass cls,
                  automata::StartKind start = automata::StartKind::None,
                  std::string name = {});
    ElemId addCounter(uint32_t target, CounterMode mode,
                      std::string name = {});
    ElemId addGate(GateType type, std::string name = {});

    void setReport(ElemId e, uint32_t report_id);

    void connect(ElemId from, ElemId to, Port port = Port::In,
                 bool inverted = false);

    size_t size() const { return elems_.size(); }
    const Element &element(ElemId e) const { return elems_[e]; }
    const std::vector<Element> &elements() const { return elems_; }
    const std::vector<Wire> &wires() const { return wires_; }

    MachineStats stats() const;

    /**
     * Validate structural rules: gate inputs only from STEs/counters
     * (single combinational layer), counter ports used correctly, STEs
     * only driven on Port::In. Raises FatalError on violations.
     */
    void validate() const;

  private:
    std::vector<Element> elems_;
    std::vector<Wire> wires_;
};

/** Map a homogeneous NFA (e.g. the mismatch matrix) onto STEs 1:1. */
ApMachine fromNfa(const automata::Nfa &nfa);

/**
 * Build the counter design for one Hamming spec. Requires the exact
 * region (PAM) to be a *prefix* of the pattern (mismatchLo > 0), i.e.
 * PAM-first orientation — see core::compile for how search orients
 * patterns/streams to satisfy this.
 */
ApMachine buildCounterMachine(const automata::HammingSpec &spec);

/** Merge `other` into `dst` as a disjoint network. */
void mergeMachines(ApMachine &dst, const ApMachine &other);

} // namespace crispr::ap

#endif // CRISPR_AP_MACHINE_HPP_
