#include "ap/simulator.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::ap {

using automata::ReportEvent;
using automata::ReportSink;
using automata::StartKind;

ApSimulator::ApSimulator(const ApMachine &machine, const ApSimConfig &config)
    : machine_(machine), config_(config)
{
    machine_.validate();
    const size_t n = machine_.size();
    steIn_.resize(n); // reused as per-element successor lists (see below)

    for (ElemId e = 0; e < n; ++e) {
        const Element &el = machine_.element(e);
        if (el.kind == ElemKind::Counter)
            counters_.push_back(CounterWiring{e, {}, {}});
        else if (el.kind == ElemKind::Gate)
            gates_.push_back(GateWiring{e, {}});
    }
    auto counterOf = [&](ElemId e) -> CounterWiring & {
        for (auto &c : counters_)
            if (c.counter == e)
                return c;
        panic("counter wiring lookup failed");
    };
    auto gateOf = [&](ElemId e) -> GateWiring & {
        for (auto &g : gates_)
            if (g.gate == e)
                return g;
        panic("gate wiring lookup failed");
    };

    // steIn_[src] = STE successors of element src (enable wiring).
    for (const Wire &w : machine_.wires()) {
        const Element &dst = machine_.element(w.to);
        switch (dst.kind) {
          case ElemKind::Ste:
            steIn_[w.from].push_back(w.to);
            break;
          case ElemKind::Counter:
            if (w.port == Port::CountUp)
                counterOf(w.to).countUp.push_back(w.from);
            else
                counterOf(w.to).reset.push_back(w.from);
            break;
          case ElemKind::Gate:
            gateOf(w.to).inputs.emplace_back(w.from, w.inverted);
            break;
        }
    }
}

ApRunStats
ApSimulator::run(std::span<const uint8_t> input, const ReportSink &sink)
{
    const size_t n = machine_.size();
    ApRunStats stats;

    // Sparse frontier bookkeeping: O(active + enabled) per cycle.
    std::vector<char> active(n, 0);
    std::vector<char> enabled(n, 0);
    std::vector<ElemId> active_list, prev_active_list, enabled_list;

    std::vector<ElemId> all_input_stes, sod_stes;
    std::vector<ElemId> reporters; // reporting elements, checked sparsely
    for (ElemId e = 0; e < n; ++e) {
        const Element &el = machine_.element(e);
        if (el.kind == ElemKind::Ste) {
            if (el.start == StartKind::AllInput)
                all_input_stes.push_back(e);
            else if (el.start == StartKind::StartOfData)
                sod_stes.push_back(e);
        }
    }

    std::vector<uint32_t> counter_value(counters_.size(), 0);

    uint64_t buffer_fill = 0;
    uint64_t drain_credit = 0;

    bool at_start = true;
    for (size_t t = 0; t < input.size(); ++t) {
        const uint8_t c = input[t];
        CRISPR_ASSERT(c < genome::kNumSymbols);

        // --- Phase 1: STE enables (successors of last cycle's active
        // elements, plus spontaneous starts), then activation. ---
        enabled_list.clear();
        auto enable = [&](ElemId e) {
            if (!enabled[e]) {
                enabled[e] = 1;
                enabled_list.push_back(e);
            }
        };
        for (ElemId src : prev_active_list)
            for (ElemId dst : steIn_[src])
                enable(dst);
        for (ElemId e : all_input_stes)
            enable(e);
        if (at_start)
            for (ElemId e : sod_stes)
                enable(e);
        at_start = false;

        active_list.clear();
        for (ElemId e : enabled_list) {
            enabled[e] = 0; // clear for the next cycle
            if (machine_.element(e).cls.matches(c)) {
                active[e] = 1;
                active_list.push_back(e);
                ++stats.steActivations;
            }
        }

        // --- Phase 2: counters (reset dominant, then count). ---
        for (size_t i = 0; i < counters_.size(); ++i) {
            const CounterWiring &cw = counters_[i];
            const Element &el = machine_.element(cw.counter);
            bool reset = false;
            for (ElemId src : cw.reset)
                if (active[src])
                    reset = true;
            if (reset)
                counter_value[i] = 0;
            bool pulse = false;
            for (ElemId src : cw.countUp)
                if (active[src])
                    pulse = true;
            bool out;
            if (pulse && counter_value[i] < el.target) {
                ++counter_value[i];
                out = counter_value[i] == el.target; // pulse on reach
            } else {
                out = false;
            }
            if (el.mode == CounterMode::Latch)
                out = counter_value[i] >= el.target;
            if (out) {
                active[cw.counter] = 1;
                active_list.push_back(cw.counter);
            }
        }

        // --- Phase 3: gates (combinational over this cycle). ---
        for (const GateWiring &gw : gates_) {
            const Element &el = machine_.element(gw.gate);
            bool out = el.gate == GateType::And;
            for (auto [src, inverted] : gw.inputs) {
                const bool v = active[src] != 0;
                const bool term = inverted ? !v : v;
                if (el.gate == GateType::And)
                    out = out && term;
                else
                    out = out || term;
            }
            if (out) {
                active[gw.gate] = 1;
                active_list.push_back(gw.gate);
            }
        }

        // --- Phase 4: reports + output event buffer model. ---
        bool reported = false;
        for (ElemId e : active_list) {
            const Element &el = machine_.element(e);
            if (el.report) {
                reported = true;
                ++stats.reportEvents;
                if (sink)
                    sink(el.reportId, static_cast<uint64_t>(t));
            }
        }
        ++stats.symbolCycles;
        if (reported)
            ++stats.reportingCycles;
        if (config_.eventBufferDepth > 0) {
            if (++drain_credit >= config_.drainCyclesPerVector) {
                drain_credit = 0;
                if (buffer_fill > 0)
                    --buffer_fill;
            }
            if (reported) {
                if (buffer_fill >= config_.eventBufferDepth) {
                    // Stall the stream until one slot drains.
                    const uint64_t wait =
                        config_.drainCyclesPerVector - drain_credit;
                    stats.stallCycles += wait;
                    drain_credit = 0;
                    // One slot drains during the stall, one is refilled:
                    // occupancy stays at the high-water mark.
                } else {
                    ++buffer_fill;
                }
            }
        }

        // Prepare next cycle: clear active flags, swap frontiers.
        std::swap(prev_active_list, active_list);
        for (ElemId e : active_list) // the *old* prev list
            active[e] = 0;
        // Note: flags of the new prev_active_list stay set only during
        // phases 2-3 of this cycle; clear them now and track enables via
        // the list alone.
        for (ElemId e : prev_active_list)
            active[e] = 0;
    }

    return stats;
}

std::vector<ReportEvent>
ApSimulator::scanAll(const genome::Sequence &seq)
{
    std::vector<ReportEvent> events;
    run(seq.codes(), [&](uint32_t id, uint64_t end) {
        events.push_back(ReportEvent{id, end});
    });
    automata::normalizeEvents(events);
    return events;
}

} // namespace crispr::ap
