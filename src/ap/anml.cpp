#include "ap/anml.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"

namespace crispr::ap {

using automata::StartKind;

namespace {

const char *
startAttr(StartKind k)
{
    switch (k) {
      case StartKind::None:
        return "none";
      case StartKind::StartOfData:
        return "start-of-data";
      case StartKind::AllInput:
        return "all-input";
    }
    return "none";
}

StartKind
parseStart(const std::string &s)
{
    if (s == "none")
        return StartKind::None;
    if (s == "start-of-data")
        return StartKind::StartOfData;
    if (s == "all-input")
        return StartKind::AllInput;
    fatal("ANML: unknown start kind '%s'", s.c_str());
}

std::string
attrOf(const std::string &tag, const std::string &name)
{
    const std::string needle = name + "=\"";
    auto at = tag.find(needle);
    if (at == std::string::npos)
        return "";
    at += needle.size();
    auto end = tag.find('"', at);
    if (end == std::string::npos)
        fatal("ANML: unterminated attribute '%s'", name.c_str());
    return tag.substr(at, end - at);
}

const char *
portAttr(Port p)
{
    switch (p) {
      case Port::In:
        return "in";
      case Port::CountUp:
        return "count";
      case Port::Reset:
        return "reset";
    }
    return "in";
}

Port
parsePort(const std::string &s)
{
    if (s.empty() || s == "in")
        return Port::In;
    if (s == "count")
        return Port::CountUp;
    if (s == "reset")
        return Port::Reset;
    fatal("ANML: unknown port '%s'", s.c_str());
}

} // namespace

void
writeMachineAnml(std::ostream &out, const ApMachine &machine,
                 const std::string &network_id)
{
    out << "<anml version=\"1.0\">\n";
    out << "  <automata-network id=\"" << network_id << "\">\n";
    for (ElemId e = 0; e < machine.size(); ++e) {
        const Element &el = machine.element(e);
        switch (el.kind) {
          case ElemKind::Ste:
            out << "    <state-transition-element id=\"e" << e
                << "\" symbol-set=\"" << el.cls.str() << "\" start=\""
                << startAttr(el.start) << "\"";
            break;
          case ElemKind::Counter:
            out << "    <counter id=\"e" << e << "\" count-target=\""
                << el.target << "\" at-target=\""
                << (el.mode == CounterMode::Latch ? "latch" : "pulse")
                << "\"";
            break;
          case ElemKind::Gate:
            out << "    <boolean id=\"e" << e << "\" function=\""
                << (el.gate == GateType::And ? "and" : "or") << "\"";
            break;
        }
        if (el.report)
            out << " report-code=\"" << el.reportId << "\"";
        if (!el.name.empty())
            out << " label=\"" << el.name << "\"";
        out << "/>\n";
    }
    for (const Wire &w : machine.wires()) {
        out << "    <wire from=\"e" << w.from << "\" to=\"e" << w.to
            << "\" port=\"" << portAttr(w.port) << "\"";
        if (w.inverted)
            out << " inverted=\"1\"";
        out << "/>\n";
    }
    out << "  </automata-network>\n";
    out << "</anml>\n";
}

std::string
machineAnmlString(const ApMachine &machine, const std::string &network_id)
{
    std::ostringstream os;
    writeMachineAnml(os, machine, network_id);
    return os.str();
}

ApMachine
readMachineAnml(std::istream &in)
{
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return machineAnmlFromString(text);
}

ApMachine
machineAnmlFromString(const std::string &text)
{
    ApMachine machine;
    std::map<std::string, ElemId> ids;
    struct PendingWire
    {
        std::string from, to;
        Port port;
        bool inverted;
    };
    std::vector<PendingWire> wires;

    size_t pos = 0;
    while (true) {
        auto lt = text.find('<', pos);
        if (lt == std::string::npos)
            break;
        auto gt = text.find('>', lt);
        if (gt == std::string::npos)
            fatal("ANML: unterminated tag");
        std::string tag = text.substr(lt + 1, gt - lt - 1);
        pos = gt + 1;

        ElemId id = kInvalidElem;
        if (tag.rfind("state-transition-element", 0) == 0) {
            std::string symbols = attrOf(tag, "symbol-set");
            std::string start = attrOf(tag, "start");
            id = machine.addSte(
                automata::SymbolClass::parse(symbols),
                start.empty() ? StartKind::None : parseStart(start),
                attrOf(tag, "label"));
        } else if (tag.rfind("counter", 0) == 0) {
            const std::string target = attrOf(tag, "count-target");
            if (target.empty())
                fatal("ANML: counter without count-target");
            const std::string mode = attrOf(tag, "at-target");
            id = machine.addCounter(
                static_cast<uint32_t>(std::stoul(target)),
                mode == "pulse" ? CounterMode::Pulse
                                : CounterMode::Latch,
                attrOf(tag, "label"));
        } else if (tag.rfind("boolean", 0) == 0) {
            const std::string fn = attrOf(tag, "function");
            id = machine.addGate(fn == "or" ? GateType::Or
                                            : GateType::And,
                                 attrOf(tag, "label"));
        } else if (tag.rfind("wire", 0) == 0) {
            wires.push_back(PendingWire{
                attrOf(tag, "from"), attrOf(tag, "to"),
                parsePort(attrOf(tag, "port")),
                attrOf(tag, "inverted") == "1"});
            continue;
        } else {
            continue; // <anml>, <automata-network>, closers
        }
        const std::string name = attrOf(tag, "id");
        if (name.empty())
            fatal("ANML: element without id");
        if (ids.count(name))
            fatal("ANML: duplicate element id '%s'", name.c_str());
        ids[name] = id;
        const std::string report = attrOf(tag, "report-code");
        if (!report.empty())
            machine.setReport(
                id, static_cast<uint32_t>(std::stoul(report)));
    }

    for (const PendingWire &w : wires) {
        auto from = ids.find(w.from);
        auto to = ids.find(w.to);
        if (from == ids.end() || to == ids.end())
            fatal("ANML: wire references unknown element");
        machine.connect(from->second, to->second, w.port, w.inverted);
    }
    machine.validate();
    return machine;
}

} // namespace crispr::ap
