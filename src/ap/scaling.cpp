#include "ap/scaling.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace crispr::ap {

namespace {

/** Passes needed for `total_stes` of `stes_per_machine`-sized automata
 *  on one board (block-granular). */
uint32_t
passesFor(uint64_t total_stes, uint64_t stes_per_machine,
          const ApDeviceSpec &spec)
{
    if (total_stes == 0)
        return 1;
    CRISPR_ASSERT(stes_per_machine > 0);
    const uint64_t machines =
        (total_stes + stes_per_machine - 1) / stes_per_machine;
    const uint64_t per_board =
        std::max<uint64_t>(1, machinesPerBoard(
                                  MachineStats{stes_per_machine, 0, 0, 0},
                                  spec));
    return static_cast<uint32_t>((machines + per_board - 1) / per_board);
}

} // namespace

ScalingEstimate
estimateBaseline(uint64_t symbols, uint64_t total_stes,
                 uint64_t stes_per_machine, const ApDeviceSpec &spec)
{
    ScalingEstimate e;
    e.devices = 1;
    e.passesPerDevice = passesFor(total_stes, stes_per_machine, spec);
    e.kernelSeconds = static_cast<double>(symbols) / spec.clockHz *
                      e.passesPerDevice;
    return e;
}

ScalingEstimate
estimateStriping(uint64_t symbols, uint64_t overlap, uint32_t devices,
                 uint64_t total_stes, uint64_t stes_per_machine,
                 const ApDeviceSpec &spec)
{
    if (devices == 0)
        fatal("need at least one device");
    ScalingEstimate e;
    e.devices = devices;
    e.passesPerDevice = passesFor(total_stes, stes_per_machine, spec);
    const uint64_t per_device =
        (symbols + devices - 1) / devices + overlap;
    e.kernelSeconds = static_cast<double>(per_device) / spec.clockHz *
                      e.passesPerDevice;
    return e;
}

ScalingEstimate
estimatePartition(uint64_t symbols, uint32_t devices,
                  uint64_t total_stes, uint64_t stes_per_machine,
                  const ApDeviceSpec &spec)
{
    if (devices == 0)
        fatal("need at least one device");
    ScalingEstimate e;
    e.devices = devices;
    const uint64_t share = (total_stes + devices - 1) / devices;
    e.passesPerDevice = passesFor(share, stes_per_machine, spec);
    e.kernelSeconds = static_cast<double>(symbols) / spec.clockHz *
                      e.passesPerDevice;
    return e;
}

double
strideInflation(uint32_t k)
{
    CRISPR_ASSERT(k >= 1);
    return static_cast<double>(k) + 0.3 * (k - 1);
}

ScalingEstimate
estimateStride(uint64_t symbols, uint32_t k, uint64_t total_stes,
               uint64_t stes_per_machine, const ApDeviceSpec &spec)
{
    if (k == 0)
        fatal("stride factor must be >= 1");
    ScalingEstimate e;
    e.devices = 1;
    e.steInflation = strideInflation(k);
    const uint64_t inflated_total = static_cast<uint64_t>(
        std::ceil(static_cast<double>(total_stes) * e.steInflation));
    const uint64_t inflated_machine = static_cast<uint64_t>(
        std::ceil(static_cast<double>(stes_per_machine) *
                  e.steInflation));
    e.passesPerDevice =
        passesFor(inflated_total, inflated_machine, spec);
    const uint64_t strided_symbols = (symbols + k - 1) / k;
    e.kernelSeconds = static_cast<double>(strided_symbols) /
                      spec.clockHz * e.passesPerDevice;
    return e;
}

} // namespace crispr::ap
