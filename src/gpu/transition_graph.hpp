/**
 * @file
 * iNFAnt2-style NFA representation: symbol-indexed transition lists.
 * For every input symbol the engine fetches the *entire* list of
 * transitions labelled with that symbol and filters by source activity
 * — the data layout that makes NFA traversal GPU-amenable but whose
 * fetch cost grows with automaton size irrespective of how many states
 * are actually active (the paper's explanation for the GPU's weak
 * results).
 */

#ifndef CRISPR_GPU_TRANSITION_GRAPH_HPP_
#define CRISPR_GPU_TRANSITION_GRAPH_HPP_

#include <cstdint>
#include <vector>

#include "automata/nfa.hpp"

namespace crispr::gpu {

/** One (source, destination) transition record. */
struct Transition
{
    uint32_t src;
    uint32_t dst;
};

/** Symbol-sorted transition lists plus per-symbol start/report sets. */
class TransitionGraph
{
  public:
    /** Compile from a homogeneous NFA. */
    explicit TransitionGraph(const automata::Nfa &nfa);

    uint32_t numStates() const { return numStates_; }

    /** Transition list for a symbol. */
    const std::vector<Transition> &
    transitions(uint8_t symbol) const
    {
        return lists_[symbol];
    }

    /** States spontaneously enabled on every symbol (all-input starts)
     *  whose class contains `symbol`. */
    const std::vector<uint32_t> &
    persistentStarts(uint8_t symbol) const
    {
        return starts_[symbol];
    }

    /** Start-of-data starts whose class contains `symbol`. */
    const std::vector<uint32_t> &
    sodStarts(uint8_t symbol) const
    {
        return sodStarts_[symbol];
    }

    /** Report id of a state, or -1 if non-reporting. */
    int64_t
    reportOf(uint32_t state) const
    {
        return reports_[state];
    }

    /** Total transition records (device memory footprint). */
    uint64_t totalTransitions() const;

    /** Largest per-symbol list (worst-case per-symbol fetch). */
    size_t maxListLength() const;

  private:
    uint32_t numStates_ = 0;
    std::vector<std::vector<Transition>> lists_;      // per symbol
    std::vector<std::vector<uint32_t>> starts_;       // per symbol
    std::vector<std::vector<uint32_t>> sodStarts_;    // per symbol
    std::vector<int64_t> reports_;                    // per state
};

} // namespace crispr::gpu

#endif // CRISPR_GPU_TRANSITION_GRAPH_HPP_
