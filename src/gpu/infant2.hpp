/**
 * @file
 * iNFAnt2 engine simulator: executes the transition-list NFA algorithm
 * exactly (functional results validated against the reference
 * interpreter) while counting the device work units — transitions
 * fetched, frontier words exchanged, per-symbol synchronisations — that
 * a calibrated SIMT timing model converts into estimated GPU kernel
 * time. The genome is split into overlapping chunks processed by
 * concurrent thread blocks, as the tool does for single long streams.
 */

#ifndef CRISPR_GPU_INFANT2_HPP_
#define CRISPR_GPU_INFANT2_HPP_

#include <cstdint>
#include <vector>

#include "automata/interp.hpp"
#include "genome/sequence.hpp"
#include "gpu/transition_graph.hpp"

namespace crispr::gpu {

/** SIMT device constants (defaults: GTX-980-class, the paper's era). */
struct SimtModel
{
    uint32_t smCount = 16;
    uint32_t threadsPerBlock = 256;
    double clockHz = 1.216e9;
    double memoryGBs = 224.0;
    double pcieGBs = 6.0;
    double launchOverheadS = 20e-6;
    double watts = 165.0; //!< board TDP under load (GTX-980 class)

    /** Per-symbol block synchronisation + frontier swap, cycles. */
    double syncCyclesPerSymbol = 48.0;
    /** Cycles to process one transition record (fetch+test+set). */
    double cyclesPerTransition = 4.0;
    /** Transition record size in device memory, bytes. */
    uint32_t bytesPerTransition = 8;
    /** Per-SM transition-list fetch throughput, bytes per core cycle. */
    double bytesPerCyclePerSm = 32.0;
};

/** Work counters from a functional run. */
struct Infant2Work
{
    uint64_t symbols = 0;            //!< including chunk-overlap re-scan
    uint64_t transitionsFetched = 0; //!< full per-symbol list fetches
    uint64_t transitionsTaken = 0;   //!< source was active
    uint64_t startInjections = 0;
    uint64_t reportEvents = 0;
    uint64_t chunks = 0;
};

/** Timing estimate decomposition. */
struct Infant2Time
{
    double transferSeconds = 0.0; //!< genome + transition tables
    double kernelSeconds = 0.0;
    double
    totalSeconds() const
    {
        return transferSeconds + kernelSeconds;
    }
};

/**
 * Convert work counters into estimated device time. Exposed as a free
 * function so callers that compute work analytically (symbol histogram
 * x transition-list lengths) can reuse the model without a functional
 * run.
 */
Infant2Time estimateInfant2Time(const Infant2Work &work,
                                const TransitionGraph &graph,
                                uint64_t genome_bytes,
                                const SimtModel &model);

/**
 * Analytic work computation from a symbol histogram (one count per
 * genome code): exact for transitionsFetched/startInjections/symbols,
 * leaving transitionsTaken and reportEvents zero.
 */
Infant2Work workFromHistogram(const TransitionGraph &graph,
                              const uint64_t *histogram,
                              uint64_t genome_len, size_t chunk_size,
                              size_t overlap);

/** The engine. */
class Infant2Engine
{
  public:
    /**
     * @param overlap chunk overlap in symbols; must be >= longest
     *        pattern - 1 for chunked results to equal a global scan.
     */
    Infant2Engine(const automata::Nfa &nfa, const SimtModel &model = {},
                  size_t chunk_size = 1 << 20, size_t overlap = 64);

    /**
     * Execute over a genome: one thread block per chunk, overlap
     * re-scanned, events deduplicated across chunk seams.
     */
    std::vector<automata::ReportEvent>
    scanAll(const genome::Sequence &seq);

    /** Work counters of the last scanAll(). */
    const Infant2Work &work() const { return work_; }

    /** Convert the last run's work into estimated device time. */
    Infant2Time estimateTime() const;

    const TransitionGraph &graph() const { return graph_; }

  private:
    void scanChunk(std::span<const uint8_t> input, uint64_t base,
                   uint64_t emit_from,
                   std::vector<automata::ReportEvent> &events);

    TransitionGraph graph_;
    SimtModel model_;
    size_t chunkSize_;
    size_t overlap_;
    Infant2Work work_;
    uint64_t genomeBytes_ = 0;
};

} // namespace crispr::gpu

#endif // CRISPR_GPU_INFANT2_HPP_
