#include "gpu/infant2.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hpp"

namespace crispr::gpu {

using automata::ReportEvent;

Infant2Engine::Infant2Engine(const automata::Nfa &nfa,
                             const SimtModel &model, size_t chunk_size,
                             size_t overlap)
    : graph_(nfa), model_(model), chunkSize_(chunk_size), overlap_(overlap)
{
    if (chunkSize_ == 0)
        fatal("iNFAnt2 chunk size must be positive");
    if (overlap_ >= chunkSize_)
        fatal("iNFAnt2 overlap must be smaller than the chunk size");
}

void
Infant2Engine::scanChunk(std::span<const uint8_t> input, uint64_t base,
                         uint64_t emit_from,
                         std::vector<ReportEvent> &events)
{
    const size_t words = (graph_.numStates() + 63) / 64;
    std::vector<uint64_t> cur(words, 0), next(words, 0);
    auto test = [&](const std::vector<uint64_t> &v, uint32_t i) {
        return (v[i >> 6] >> (i & 63)) & 1u;
    };
    auto set = [&](std::vector<uint64_t> &v, uint32_t i) {
        v[i >> 6] |= 1ULL << (i & 63);
    };

    for (size_t t = 0; t < input.size(); ++t) {
        const uint8_t c = input[t];
        CRISPR_ASSERT(c < genome::kNumSymbols);
        std::fill(next.begin(), next.end(), 0);

        // The kernel fetches the whole per-symbol list; each thread
        // tests its transition's source bit in shared memory.
        const auto &list = graph_.transitions(c);
        work_.transitionsFetched += list.size();
        for (const Transition &tr : list) {
            if (test(cur, tr.src)) {
                ++work_.transitionsTaken;
                set(next, tr.dst);
            }
        }
        // Persistent (start-anywhere) states are re-injected per symbol.
        for (uint32_t s : graph_.persistentStarts(c)) {
            ++work_.startInjections;
            set(next, s);
        }
        if (base + t == 0) {
            for (uint32_t s : graph_.sodStarts(c))
                set(next, s);
        }

        // Report phase: scan the (sparse) frontier for report states.
        const uint64_t pos = base + t;
        if (pos >= emit_from) {
            for (size_t w = 0; w < words; ++w) {
                uint64_t bits = next[w];
                while (bits) {
                    const uint32_t s = static_cast<uint32_t>(
                        w * 64 + static_cast<size_t>(
                                     std::countr_zero(bits)));
                    bits &= bits - 1;
                    const int64_t id = graph_.reportOf(s);
                    if (id >= 0) {
                        ++work_.reportEvents;
                        events.push_back(ReportEvent{
                            static_cast<uint32_t>(id), pos});
                    }
                }
            }
        }
        std::swap(cur, next);
        ++work_.symbols;
    }
}

std::vector<ReportEvent>
Infant2Engine::scanAll(const genome::Sequence &seq)
{
    work_ = Infant2Work{};
    genomeBytes_ = seq.size();
    std::vector<ReportEvent> events;

    const size_t n = seq.size();
    const size_t step = chunkSize_ - overlap_;
    for (size_t start = 0; start < n; start += step) {
        const size_t lead = start >= overlap_ ? start - overlap_ : 0;
        const size_t end = std::min(n, start + step);
        if (start >= end)
            break;
        ++work_.chunks;
        scanChunk(std::span<const uint8_t>(seq.data() + lead, end - lead),
                  lead, /*emit_from=*/start, events);
        if (end == n)
            break;
    }

    automata::normalizeEvents(events);
    return events;
}

Infant2Time
estimateInfant2Time(const Infant2Work &work, const TransitionGraph &graph,
                    uint64_t genome_bytes, const SimtModel &model)
{
    Infant2Time t;
    // One-time transfers: genome stream + transition tables.
    const double table_bytes =
        static_cast<double>(graph.totalTransitions()) *
        model.bytesPerTransition;
    t.transferSeconds =
        (static_cast<double>(genome_bytes) + table_bytes) /
        (model.pcieGBs * 1e9);

    // Kernel: chunks run concurrently, one block per SM; a wave of
    // smCount chunks takes the per-chunk serial symbol loop.
    const double waves =
        std::ceil(static_cast<double>(work.chunks) /
                  static_cast<double>(model.smCount));
    const double symbols_per_chunk =
        work.chunks ? static_cast<double>(work.symbols) /
                          static_cast<double>(work.chunks)
                    : 0.0;
    const double trans_per_symbol =
        work.symbols ? static_cast<double>(work.transitionsFetched) /
                           static_cast<double>(work.symbols)
                     : 0.0;

    // Per-symbol cycles: fixed sync + transition rounds; each round the
    // block's threads process one record each, in lockstep.
    const double rounds =
        std::ceil(trans_per_symbol /
                  static_cast<double>(model.threadsPerBlock));
    // The per-symbol list fetch also moves T x record-size bytes through
    // the SM's load path; whichever of compute rounds or fetch dominates
    // paces the symbol.
    const double fetch_cycles = trans_per_symbol *
                                model.bytesPerTransition /
                                model.bytesPerCyclePerSm;
    const double cycles_per_symbol =
        model.syncCyclesPerSymbol +
        std::max(rounds * model.cyclesPerTransition, fetch_cycles);
    // Memory-bandwidth floor: all blocks together re-fetch their lists.
    const double bytes_per_symbol_all_blocks =
        trans_per_symbol * model.bytesPerTransition *
        std::min<double>(static_cast<double>(work.chunks), model.smCount);
    const double mem_s_per_symbol =
        bytes_per_symbol_all_blocks / (model.memoryGBs * 1e9);

    const double compute_s_per_symbol = cycles_per_symbol / model.clockHz;
    t.kernelSeconds =
        waves * symbols_per_chunk *
            std::max(compute_s_per_symbol, mem_s_per_symbol) +
        model.launchOverheadS;
    return t;
}

Infant2Work
workFromHistogram(const TransitionGraph &graph, const uint64_t *histogram,
                  uint64_t genome_len, size_t chunk_size, size_t overlap)
{
    CRISPR_ASSERT(chunk_size > overlap);
    Infant2Work work;
    const uint64_t step = chunk_size - overlap;
    work.chunks = genome_len ? (genome_len + step - 1) / step : 0;
    // Overlap regions are re-scanned by the following chunk; the
    // histogram approximation charges them at the average composition.
    uint64_t total = 0;
    for (uint8_t c = 0; c < genome::kNumSymbols; ++c)
        total += histogram[c];
    CRISPR_ASSERT(total == genome_len);
    const double rescan_factor =
        genome_len == 0
            ? 1.0
            : 1.0 + static_cast<double>(
                        (work.chunks > 0 ? work.chunks - 1 : 0) * overlap) /
                        static_cast<double>(genome_len);
    for (uint8_t c = 0; c < genome::kNumSymbols; ++c) {
        work.transitionsFetched += histogram[c] *
                                   graph.transitions(c).size();
        work.startInjections +=
            histogram[c] * graph.persistentStarts(c).size();
    }
    work.symbols = static_cast<uint64_t>(
        static_cast<double>(genome_len) * rescan_factor);
    work.transitionsFetched = static_cast<uint64_t>(
        static_cast<double>(work.transitionsFetched) * rescan_factor);
    work.startInjections = static_cast<uint64_t>(
        static_cast<double>(work.startInjections) * rescan_factor);
    return work;
}

Infant2Time
Infant2Engine::estimateTime() const
{
    return estimateInfant2Time(work_, graph_, genomeBytes_, model_);
}

} // namespace crispr::gpu
