#include "gpu/transition_graph.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::gpu {

using automata::Nfa;
using automata::StartKind;

TransitionGraph::TransitionGraph(const Nfa &nfa)
    : numStates_(static_cast<uint32_t>(nfa.size())),
      lists_(genome::kNumSymbols), starts_(genome::kNumSymbols),
      sodStarts_(genome::kNumSymbols), reports_(nfa.size(), -1)
{
    for (automata::StateId s = 0; s < nfa.size(); ++s) {
        const auto &st = nfa.state(s);
        if (st.report)
            reports_[s] = st.reportId;
        for (uint8_t c = 0; c < genome::kNumSymbols; ++c) {
            if (!st.cls.matches(c))
                continue;
            if (st.start == StartKind::AllInput)
                starts_[c].push_back(s);
            else if (st.start == StartKind::StartOfData)
                sodStarts_[c].push_back(s);
        }
    }
    for (automata::StateId s = 0; s < nfa.size(); ++s) {
        const auto &st = nfa.state(s);
        for (automata::StateId t : st.out) {
            const auto &dst = nfa.state(t);
            for (uint8_t c = 0; c < genome::kNumSymbols; ++c) {
                if (dst.cls.matches(c))
                    lists_[c].push_back(Transition{s, t});
            }
        }
    }
    // iNFAnt sorts lists by destination for coalesced writes.
    for (auto &list : lists_) {
        std::sort(list.begin(), list.end(),
                  [](const Transition &a, const Transition &b) {
                      return a.dst != b.dst ? a.dst < b.dst
                                            : a.src < b.src;
                  });
    }
}

uint64_t
TransitionGraph::totalTransitions() const
{
    uint64_t n = 0;
    for (const auto &list : lists_)
        n += list.size();
    return n;
}

size_t
TransitionGraph::maxListLength() const
{
    size_t n = 0;
    for (const auto &list : lists_)
        n = std::max(n, list.size());
    return n;
}

} // namespace crispr::gpu
