/**
 * @file
 * Umbrella header: the library's public API surface in one include.
 *
 * Including "crispr.hpp" (instead of individual subsystem headers) is
 * the supported way to consume the library; subsystem headers may move
 * between releases, this umbrella does not.
 *
 * @code
 *   #include "crispr.hpp"
 *   crispr::core::SearchSession session(guides, config);
 *   auto res = session.search(genome);       // compiled once, reusable
 *   auto one = crispr::core::search(genome, guides, config); // one-shot
 *   crispr::core::SearchService service;     // batching server front end
 *   auto fut = service.submit(guides, request);
 *   crispr::core::ShardedSearchService sharded({.shards = 4});
 *   auto f2 = sharded.submit(guides, request); // scatter-gather serving
 * @endcode
 *
 * Execution-option precedence (core/options.hpp): a request field
 * still at its built-in default inherits the service-wide value
 * (`ServiceOptions::defaults`), which in turn falls back to the
 * built-in — request > service default > built-in. `scanRange` is the
 * one exception: it is result-affecting, never inherited, and owned
 * by the shard coordinator when one is serving.
 */

#ifndef CRISPR_CRISPR_HPP_
#define CRISPR_CRISPR_HPP_

// Common substrate.
#include "common/cli.hpp"
#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/faultpoints.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

// Genome substrate.
#include "genome/alphabet.hpp"
#include "genome/fasta.hpp"
#include "genome/fasta_stream.hpp"
#include "genome/generator.hpp"
#include "genome/packed.hpp"
#include "genome/record_map.hpp"
#include "genome/sequence.hpp"

// Automata.
#include "automata/anml.hpp"
#include "automata/builders.hpp"
#include "automata/dfa.hpp"
#include "automata/dot.hpp"
#include "automata/edit.hpp"
#include "automata/hopcroft.hpp"
#include "automata/interp.hpp"

// Engines.
#include "ap/capacity.hpp"
#include "ap/machine.hpp"
#include "ap/scaling.hpp"
#include "ap/simulator.hpp"
#include "baselines/brute.hpp"
#include "baselines/casoffinder.hpp"
#include "baselines/casot.hpp"
#include "fpga/fabric.hpp"
#include "fpga/report.hpp"
#include "fpga/resource.hpp"
#include "gpu/infant2.hpp"
#include "hscan/multipattern.hpp"
#include "hscan/parallel.hpp"
#include "hscan/prefilter.hpp"

// Public search API.
#include "core/breaker.hpp"
#include "core/bulge.hpp"
#include "core/chunked_scan.hpp"
#include "core/engine.hpp"
#include "core/engine_registry.hpp"
#include "core/genome_store.hpp"
#include "core/guide.hpp"
#include "core/options.hpp"
#include "core/report.hpp"
#include "core/score.hpp"
#include "core/search.hpp"
#include "core/service.hpp"
#include "core/session.hpp"
#include "core/shard.hpp"

#endif // CRISPR_CRISPR_HPP_
