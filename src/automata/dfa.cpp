#include "automata/dfa.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/logging.hpp"
#include "common/serial.hpp"

namespace crispr::automata {

std::span<const uint32_t>
Dfa::reportsOf(uint32_t state) const
{
    return {reportIds_.data() + reportBegin_[state],
            reportIds_.data() + reportBegin_[state + 1]};
}

uint32_t
Dfa::scan(std::span<const uint8_t> input, const ReportSink &sink,
          uint64_t base_offset, uint32_t from_state) const
{
    uint32_t cur = from_state;
    for (size_t t = 0; t < input.size(); ++t) {
        cur = trans_[cur * kAlphabet + input[t]];
        if (accepting(cur) && sink) {
            for (uint32_t id : reportsOf(cur))
                sink(id, base_offset + t);
        }
    }
    return cur;
}

std::vector<ReportEvent>
Dfa::scanAll(const genome::Sequence &seq) const
{
    std::vector<ReportEvent> events;
    scan(seq.codes(), [&](uint32_t id, uint64_t end) {
        events.push_back(ReportEvent{id, end});
    });
    return events;
}

size_t
Dfa::tableBytes() const
{
    return trans_.size() * sizeof(uint32_t) +
           reportBegin_.size() * sizeof(uint32_t) +
           reportIds_.size() * sizeof(uint32_t);
}

Dfa
Dfa::fromTables(uint32_t num_states, std::vector<uint32_t> trans,
                const std::vector<std::vector<uint32_t>> &reports)
{
    CRISPR_ASSERT(trans.size() ==
                  static_cast<size_t>(num_states) * kAlphabet);
    CRISPR_ASSERT(reports.size() == num_states);
    Dfa d;
    d.numStates_ = num_states;
    d.trans_ = std::move(trans);
    d.reportBegin_.assign(num_states + 1, 0);
    for (uint32_t s = 0; s < num_states; ++s) {
        d.reportBegin_[s + 1] =
            d.reportBegin_[s] + static_cast<uint32_t>(reports[s].size());
    }
    d.reportIds_.reserve(d.reportBegin_[num_states]);
    for (uint32_t s = 0; s < num_states; ++s) {
        auto sorted = reports[s];
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()),
                     sorted.end());
        // CSR offsets were computed from the pre-dedup sizes; rebuild if
        // dedup removed anything.
        for (uint32_t id : sorted)
            d.reportIds_.push_back(id);
        d.reportBegin_[s + 1] =
            static_cast<uint32_t>(d.reportIds_.size());
    }
    return d;
}

namespace {

constexpr uint32_t kDfaFormatVersion = 1;

} // namespace

std::vector<uint8_t>
Dfa::encode() const
{
    common::BlobWriter w;
    w.u32(numStates_);
    for (uint32_t t : trans_)
        w.u32(t);
    for (uint32_t b : reportBegin_)
        w.u32(b);
    w.u32(static_cast<uint32_t>(reportIds_.size()));
    for (uint32_t id : reportIds_)
        w.u32(id);
    return common::sealBlob("dfa", kDfaFormatVersion, w.buffer());
}

common::Expected<Dfa>
Dfa::decode(std::span<const uint8_t> blob)
{
    auto payload = common::openBlob("dfa", kDfaFormatVersion, blob);
    if (!payload.ok())
        return payload.error();
    common::BlobReader r(payload.value());

    Dfa d;
    d.numStates_ = r.u32();
    // Table sizes are implied by the state count; bound it before the
    // allocations it sizes (the envelope hash already screens random
    // corruption, this screens a hostile or foreign payload).
    if (r.ok() &&
        (d.numStates_ == 0 ||
         static_cast<uint64_t>(d.numStates_) * kAlphabet * 4 >
             r.remaining()))
        r.fail(strprintf("dfa blob state count %u is implausible",
                         d.numStates_));
    if (auto st = r.status(); !st.ok())
        return st.error();

    d.trans_.resize(static_cast<size_t>(d.numStates_) * kAlphabet);
    for (uint32_t &t : d.trans_) {
        t = r.u32();
        if (r.ok() && t >= d.numStates_) {
            r.fail(strprintf("dfa blob transition to state %u out of "
                             "%u states",
                             t, d.numStates_));
            break;
        }
    }
    d.reportBegin_.resize(static_cast<size_t>(d.numStates_) + 1);
    for (size_t i = 0; i < d.reportBegin_.size(); ++i) {
        d.reportBegin_[i] = r.u32();
        if (r.ok() && i > 0 && d.reportBegin_[i] < d.reportBegin_[i - 1]) {
            r.fail("dfa blob report offsets are not monotonic");
            break;
        }
    }
    const uint32_t id_count = r.u32();
    if (r.ok() && (id_count != d.reportBegin_.back() ||
                   static_cast<uint64_t>(id_count) * 4 > r.remaining()))
        r.fail(strprintf("dfa blob report id count %u is inconsistent",
                         id_count));
    if (auto st = r.status(); !st.ok())
        return st.error();
    d.reportIds_.resize(id_count);
    for (uint32_t &id : d.reportIds_)
        id = r.u32();
    if (auto st = r.finish(); !st.ok())
        return st.error();
    return d;
}

namespace {

/** Hash for the bit-set keys of the subset-construction map. */
struct VecHash
{
    size_t
    operator()(const std::vector<uint64_t> &v) const
    {
        uint64_t h = 0x9e3779b97f4a7c15ULL;
        for (uint64_t w : v) {
            h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        }
        return static_cast<size_t>(h);
    }
};

} // namespace

std::optional<Dfa>
subsetConstruct(const Nfa &nfa, uint32_t max_states)
{
    const size_t n = nfa.size();
    const size_t words = (n + 63) / 64;
    constexpr int kAlpha = Dfa::kAlphabet;

    // Per-symbol class masks and spontaneous-start masks.
    std::vector<std::vector<uint64_t>> cmask(
        kAlpha, std::vector<uint64_t>(words, 0));
    std::vector<uint64_t> all_start(words, 0), sod_start(words, 0);
    auto set_bit = [](std::vector<uint64_t> &v, size_t i) {
        v[i >> 6] |= 1ULL << (i & 63);
    };
    for (StateId s = 0; s < n; ++s) {
        const auto &st = nfa.state(s);
        for (uint8_t c = 0; c < kAlpha; ++c)
            if (st.cls.matches(c))
                set_bit(cmask[c], s);
        if (st.start == StartKind::AllInput)
            set_bit(all_start, s);
        if (st.start == StartKind::StartOfData)
            set_bit(sod_start, s);
    }

    // DFA states are sets of NFA states. Two initial flavours: set index
    // 0 is the true initial state (start-of-data states still enabled);
    // every other state uses only all-input spontaneous starts. To keep
    // the construction uniform we tag the initial state with an extra
    // bit appended past the NFA states.
    const size_t tag_words = (n + 1 + 63) / 64;
    auto make_key = [&](const std::vector<uint64_t> &set, bool initial) {
        std::vector<uint64_t> key(tag_words, 0);
        std::copy(set.begin(), set.end(), key.begin());
        if (initial)
            key[n >> 6] |= 1ULL << (n & 63);
        return key;
    };

    std::unordered_map<std::vector<uint64_t>, uint32_t, VecHash> ids;
    std::vector<std::vector<uint64_t>> sets;   // NFA-state set per DFA id
    std::vector<char> is_initial;              // SOD-enabled flag per id
    std::vector<uint32_t> trans;
    std::vector<std::vector<uint32_t>> reports;

    std::vector<uint64_t> empty(words, 0);
    ids.emplace(make_key(empty, true), 0);
    sets.push_back(empty);
    is_initial.push_back(1);

    std::vector<uint64_t> succ(words), next(words);
    for (uint32_t cur = 0; cur < sets.size(); ++cur) {
        if (trans.size() < (cur + 1) * static_cast<size_t>(kAlpha))
            trans.resize((cur + 1) * kAlpha, 0);

        // Successor-enabled set of `cur` (symbol independent part).
        std::fill(succ.begin(), succ.end(), 0);
        const auto &set = sets[cur];
        for (size_t w = 0; w < words; ++w) {
            uint64_t bits = set[w];
            while (bits) {
                const int b = std::countr_zero(bits);
                bits &= bits - 1;
                const StateId s = static_cast<StateId>(w * 64 + b);
                for (StateId t : nfa.state(s).out)
                    set_bit(succ, t);
            }
        }
        for (size_t w = 0; w < words; ++w) {
            succ[w] |= all_start[w];
            if (is_initial[cur])
                succ[w] |= sod_start[w];
        }

        for (uint8_t c = 0; c < kAlpha; ++c) {
            for (size_t w = 0; w < words; ++w)
                next[w] = succ[w] & cmask[c][w];
            auto key = make_key(next, false);
            auto [it, inserted] =
                ids.emplace(std::move(key),
                            static_cast<uint32_t>(sets.size()));
            if (inserted) {
                if (sets.size() >= max_states)
                    return std::nullopt;
                sets.push_back(next);
                is_initial.push_back(0);
            }
            trans[cur * kAlpha + c] = it->second;
        }
    }

    // Report sets per DFA state.
    const uint32_t num_states = static_cast<uint32_t>(sets.size());
    trans.resize(static_cast<size_t>(num_states) * kAlpha, 0);
    reports.resize(num_states);
    for (uint32_t q = 0; q < num_states; ++q) {
        const auto &set = sets[q];
        for (size_t w = 0; w < words; ++w) {
            uint64_t bits = set[w];
            while (bits) {
                const int b = std::countr_zero(bits);
                bits &= bits - 1;
                const StateId s = static_cast<StateId>(w * 64 + b);
                if (nfa.state(s).report)
                    reports[q].push_back(nfa.state(s).reportId);
            }
        }
    }

    return Dfa::fromTables(num_states, std::move(trans), reports);
}

} // namespace crispr::automata
