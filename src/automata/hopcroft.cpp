#include "automata/hopcroft.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "common/logging.hpp"

namespace crispr::automata {

Dfa
hopcroftMinimize(const Dfa &dfa)
{
    const uint32_t n = dfa.size();
    constexpr int kAlpha = Dfa::kAlphabet;
    if (n == 0)
        return dfa;

    // --- Initial partition by report-id set. ---
    std::map<std::vector<uint32_t>, uint32_t> sig_block;
    std::vector<uint32_t> block_of(n);
    for (uint32_t s = 0; s < n; ++s) {
        std::vector<uint32_t> sig(dfa.reportsOf(s).begin(),
                                  dfa.reportsOf(s).end());
        auto [it, inserted] =
            sig_block.emplace(std::move(sig),
                              static_cast<uint32_t>(sig_block.size()));
        block_of[s] = it->second;
    }
    uint32_t num_blocks = static_cast<uint32_t>(sig_block.size());

    // --- Inverse transition lists (CSR per symbol). ---
    std::vector<std::vector<std::vector<uint32_t>>> inv(
        kAlpha, std::vector<std::vector<uint32_t>>(n));
    for (uint32_t s = 0; s < n; ++s)
        for (uint8_t c = 0; c < kAlpha; ++c)
            inv[c][dfa.next(s, c)].push_back(s);

    // --- Block membership bookkeeping. ---
    std::vector<std::vector<uint32_t>> members(num_blocks);
    for (uint32_t s = 0; s < n; ++s)
        members[block_of[s]].push_back(s);

    // Worklist of (block, symbol) splitters.
    std::set<std::pair<uint32_t, uint8_t>> work;
    for (uint32_t b = 0; b < num_blocks; ++b)
        for (uint8_t c = 0; c < kAlpha; ++c)
            work.insert({b, c});

    std::vector<uint32_t> touched_blocks;
    std::vector<std::vector<uint32_t>> moved; // per touched block
    std::vector<int32_t> touch_idx; // block -> index into moved, or -1

    touch_idx.assign(num_blocks, -1);

    while (!work.empty()) {
        auto [a, c] = *work.begin();
        work.erase(work.begin());

        // X = set of states with a c-transition into block `a`.
        touched_blocks.clear();
        for (uint32_t q : members[a]) {
            for (uint32_t p : inv[c][q]) {
                uint32_t b = block_of[p];
                if (touch_idx[b] < 0) {
                    touch_idx[b] =
                        static_cast<int32_t>(touched_blocks.size());
                    touched_blocks.push_back(b);
                    if (moved.size() < touched_blocks.size())
                        moved.emplace_back();
                    moved[touch_idx[b]].clear();
                }
                moved[touch_idx[b]].push_back(p);
            }
        }

        for (uint32_t b : touched_blocks) {
            auto &hits = moved[touch_idx[b]];
            std::sort(hits.begin(), hits.end());
            hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
            touch_idx[b] = -1;
            if (hits.size() == members[b].size())
                continue; // whole block goes to X: no split

            // Split block b into (b \ X) and the new block (b ∩ X).
            const uint32_t nb = num_blocks++;
            members.emplace_back();
            touch_idx.push_back(-1);
            std::vector<uint32_t> keep;
            keep.reserve(members[b].size() - hits.size());
            size_t hi = 0;
            std::sort(members[b].begin(), members[b].end());
            for (uint32_t s : members[b]) {
                if (hi < hits.size() && hits[hi] == s) {
                    ++hi;
                    members[nb].push_back(s);
                    block_of[s] = nb;
                } else {
                    keep.push_back(s);
                }
            }
            members[b] = std::move(keep);

            // Update worklist (Hopcroft's smaller-half rule).
            for (uint8_t cc = 0; cc < kAlpha; ++cc) {
                if (work.count({b, cc})) {
                    work.insert({nb, cc});
                } else {
                    if (members[b].size() <= members[nb].size())
                        work.insert({b, cc});
                    else
                        work.insert({nb, cc});
                }
            }
        }
    }

    // --- Rebuild the DFA with block 0 = block of the old initial state. ---
    std::vector<uint32_t> renum(num_blocks, UINT32_MAX);
    uint32_t next_id = 0;
    renum[block_of[0]] = next_id++;
    for (uint32_t b = 0; b < num_blocks; ++b) {
        if (members[b].empty())
            continue;
        if (renum[b] == UINT32_MAX)
            renum[b] = next_id++;
    }
    const uint32_t m = next_id;

    std::vector<uint32_t> trans(static_cast<size_t>(m) * kAlpha, 0);
    std::vector<std::vector<uint32_t>> reports(m);
    for (uint32_t b = 0; b < num_blocks; ++b) {
        if (members[b].empty())
            continue;
        const uint32_t q = renum[b];
        const uint32_t rep = members[b].front();
        for (uint8_t c = 0; c < kAlpha; ++c)
            trans[q * kAlpha + c] = renum[block_of[dfa.next(rep, c)]];
        auto rs = dfa.reportsOf(rep);
        reports[q].assign(rs.begin(), rs.end());
    }

    return Dfa::fromTables(m, std::move(trans), reports);
}

} // namespace crispr::automata
