#include "automata/edit.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>

#include "common/logging.hpp"

namespace crispr::automata {

namespace {

/** Shared rule predicates between the builder and the DP reference. */
struct Rules
{
    const EditSpec &spec;
    size_t len;
    size_t lo, hi;

    explicit Rules(const EditSpec &s)
        : spec(s), len(s.masks.size()), lo(s.editLo),
          hi(std::min(s.editHi, s.masks.size()))
    {
    }

    /** Position j (0-based) may be substituted or deleted. */
    bool
    editable(size_t j) const
    {
        return j >= lo && j < hi;
    }

    /** Insertion allowed with i pattern positions consumed. */
    bool
    insertionAt(size_t i) const
    {
        return i >= 1 && i <= len - 1 && i >= lo && i < hi;
    }

    /** Positions i..len-1 can all be deleted. */
    bool
    suffixDeletable(size_t i) const
    {
        for (size_t j = i; j < len; ++j)
            if (!editable(j))
                return false;
        return true;
    }
};

void
validateSpec(const EditSpec &spec)
{
    if (spec.masks.empty())
        fatal("cannot build an automaton for an empty pattern");
    for (auto m : spec.masks)
        if ((m & 0xf) == 0)
            fatal("pattern contains an unmatchable (empty) position");
    if (spec.maxMismatches < 0 || spec.maxBulges < 0)
        fatal("negative edit budget");
    if (spec.editLo > std::min(spec.editHi, spec.masks.size()))
        fatal("edit window is inverted");
}

} // namespace

Nfa
buildEditNfa(const EditSpec &spec)
{
    validateSpec(spec);
    const Rules rules(spec);
    const size_t len = rules.len;
    const int d = spec.maxMismatches;
    const int bmax = spec.maxBulges;

    Nfa nfa;
    // Node key: (type, consumed, mismatches, bulges).
    enum Type : int { kMatch, kSubst, kInsert };
    using Key = std::tuple<int, size_t, int, int>;
    std::map<Key, StateId> ids;
    std::deque<Key> work;

    auto nodeOf = [&](int type, size_t i, int m, int b,
                      bool start) -> StateId {
        Key key{type, i, m, b};
        auto it = ids.find(key);
        if (it != ids.end()) {
            if (start)
                nfa.state(it->second).start = StartKind::AllInput;
            return it->second;
        }
        SymbolClass cls;
        switch (type) {
          case kMatch:
            cls = SymbolClass::match(spec.masks[i - 1]);
            break;
          case kSubst:
            cls = SymbolClass::mismatch(spec.masks[i - 1]);
            break;
          default:
            cls = SymbolClass::any();
            break;
        }
        StateId s = nfa.addState(
            cls, start ? StartKind::AllInput : StartKind::None);
        // Accept if the remaining suffix can be deleted in budget.
        if (rules.suffixDeletable(i) &&
            b + static_cast<int>(len - i) <= bmax) {
            nfa.setReport(s, spec.reportId);
        }
        ids.emplace(key, s);
        work.push_back(key);
        return s;
    };

    // Consume-next helper: from configuration (i, m, b), connect (or
    // start-enable) every "delete k, then consume position i+k" target.
    auto expandConsume = [&](size_t i, int m, int b, StateId from,
                             bool as_start) {
        for (size_t k = 0;; ++k) {
            const int nb = b + static_cast<int>(k);
            if (nb > bmax || i + k >= len)
                break;
            // positions i .. i+k-1 must be deletable.
            if (k > 0 && !rules.editable(i + k - 1))
                break;
            const size_t consume = i + k; // 0-based position consumed
            // Match.
            {
                StateId t =
                    nodeOf(kMatch, consume + 1, m, nb, as_start);
                if (!as_start)
                    nfa.addEdge(from, t);
            }
            // Substitution.
            if (rules.editable(consume) && m + 1 <= d) {
                StateId t =
                    nodeOf(kSubst, consume + 1, m + 1, nb, as_start);
                if (!as_start)
                    nfa.addEdge(from, t);
            }
        }
    };

    // Start configurations: leading deletions then first consumption.
    expandConsume(0, 0, 0, kInvalidState, /*as_start=*/true);

    // BFS over reachable configurations.
    while (!work.empty()) {
        auto [type, i, m, b] = work.front();
        work.pop_front();
        const StateId from = ids.at(Key{type, i, m, b});
        expandConsume(i, m, b, from, false);
        if (rules.insertionAt(i) && b + 1 <= bmax) {
            StateId t = nodeOf(kInsert, i, m, b + 1, false);
            nfa.addEdge(from, t);
        }
    }

    nfa.trim();
    nfa.validate();
    return nfa;
}

std::vector<ReportEvent>
editDistanceScan(const genome::Sequence &text, const EditSpec &spec)
{
    validateSpec(spec);
    const Rules rules(spec);
    const size_t len = rules.len;
    const int d = spec.maxMismatches;
    const int bmax = spec.maxBulges;
    constexpr int kInf = 1 << 20;

    // dp[b][i]: minimum substitutions aligning pattern prefix of length
    // i against a window ending at the current text position, using at
    // most b bulges.
    std::vector<std::vector<int>> prev(
        bmax + 1, std::vector<int>(len + 1, kInf));
    std::vector<std::vector<int>> cur = prev;

    // Initial (virtual t = -1) column: i leading deletions cost i
    // bulges and 0 substitutions.
    for (int b = 0; b <= bmax; ++b) {
        prev[b][0] = 0;
        for (size_t i = 1; i <= len; ++i) {
            if (static_cast<int>(i) <= b && rules.editable(i - 1) &&
                prev[b][i - 1] == 0) {
                prev[b][i] = 0;
            }
        }
    }
    // (The chain above requires every deleted prefix position to be
    // editable; prev[b][i-1]==0 propagates that.)

    std::vector<ReportEvent> events;
    for (size_t t = 0; t < text.size(); ++t) {
        const uint8_t c = text[t];
        for (int b = 0; b <= bmax; ++b) {
            cur[b][0] = 0; // free window start
            for (size_t i = 1; i <= len; ++i) {
                int best = kInf;
                // Match / substitution of position i-1.
                const int via = prev[b][i - 1];
                if (via < kInf) {
                    if (genome::maskMatches(spec.masks[i - 1], c))
                        best = std::min(best, via);
                    else if (rules.editable(i - 1))
                        best = std::min(best, via + 1);
                }
                // Insertion (consume text, keep i).
                if (b > 0 && rules.insertionAt(i))
                    best = std::min(best, prev[b - 1][i]);
                // Deletion (skip position i-1, same text column).
                if (b > 0 && rules.editable(i - 1))
                    best = std::min(best, cur[b - 1][i - 1]);
                cur[b][i] = best;
            }
        }
        if (cur[bmax][len] <= d)
            events.push_back(
                ReportEvent{spec.reportId, static_cast<uint64_t>(t)});
        std::swap(prev, cur);
    }
    return events;
}

std::vector<ReportEvent>
editDistanceScan(const genome::Sequence &text,
                 std::span<const EditSpec> specs)
{
    std::vector<ReportEvent> events;
    for (const EditSpec &spec : specs) {
        auto one = editDistanceScan(text, spec);
        events.insert(events.end(), one.begin(), one.end());
    }
    normalizeEvents(events);
    return events;
}

} // namespace crispr::automata
