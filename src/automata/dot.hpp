/**
 * @file
 * Graphviz DOT export of homogeneous automata, for visualising the
 * designs (the automata_zoo example emits these next to the ANML).
 */

#ifndef CRISPR_AUTOMATA_DOT_HPP_
#define CRISPR_AUTOMATA_DOT_HPP_

#include <iosfwd>
#include <string>

#include "automata/nfa.hpp"

namespace crispr::automata {

/** Write `dot` source for the automaton; start states are diamonds,
 *  reporting states double circles; labels are the symbol classes. */
void writeDot(std::ostream &out, const Nfa &nfa,
              const std::string &name = "automaton");

/** Render to a string. */
std::string dotString(const Nfa &nfa,
                      const std::string &name = "automaton");

} // namespace crispr::automata

#endif // CRISPR_AUTOMATA_DOT_HPP_
