#include "automata/builders.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crispr::automata {

namespace {

/**
 * Shared shape logic between the builder and the closed-form counter.
 * Position indices below are 1-based (position i consumes masks[i-1]).
 */
struct Grid
{
    size_t len;       // pattern length
    int d;            // mismatch budget
    size_t lo, hi;    // 0-based half-open mismatch-allowed range

    bool
    allowed(size_t i) const // 1-based position
    {
        return i - 1 >= lo && i - 1 < hi;
    }

    /** Number of mismatch-allowed positions among 1..i. */
    size_t
    allowedUpTo(size_t i) const
    {
        size_t a = std::min(i, hi);
        return a > lo ? a - lo : 0;
    }

    /** Does the "matched position i with k mismatches so far" state exist? */
    bool
    mExists(size_t i, int k) const
    {
        return k >= 0 && k <= d &&
               static_cast<size_t>(k) <= allowedUpTo(i - 1);
    }

    /** Does the "mismatched position i, k mismatches total" state exist? */
    bool
    xExists(size_t i, int k) const
    {
        return k >= 1 && k <= d && allowed(i) &&
               static_cast<size_t>(k - 1) <= allowedUpTo(i - 1);
    }
};

} // namespace

Nfa
buildHammingNfa(const HammingSpec &spec)
{
    const size_t len = spec.masks.size();
    if (len == 0)
        fatal("cannot build an automaton for an empty pattern");
    for (auto m : spec.masks)
        if ((m & 0xf) == 0)
            fatal("pattern contains an unmatchable (empty) position");
    if (spec.maxMismatches < 0)
        fatal("negative mismatch budget");

    Grid g{len, spec.maxMismatches, spec.mismatchLo,
           std::min(spec.mismatchHi, len)};
    if (g.lo > g.hi)
        fatal("mismatch range is inverted");

    Nfa nfa;
    // m_id[i-1][k] / x_id[i-1][k]: state ids of the grid nodes.
    std::vector<std::vector<StateId>> m_id(len), x_id(len);
    for (size_t i = 1; i <= len; ++i) {
        m_id[i - 1].assign(g.d + 1, kInvalidState);
        x_id[i - 1].assign(g.d + 1, kInvalidState);
        for (int k = 0; k <= g.d; ++k) {
            StartKind start = (i == 1) ? StartKind::AllInput
                                       : StartKind::None;
            if (g.mExists(i, k)) {
                m_id[i - 1][k] = nfa.addState(
                    SymbolClass::match(spec.masks[i - 1]), start);
            }
            if (g.xExists(i, k)) {
                x_id[i - 1][k] = nfa.addState(
                    SymbolClass::mismatch(spec.masks[i - 1]), start);
            }
        }
    }

    auto connect = [&](StateId from, size_t i, int k) {
        // Successors of a node that has consumed position i with k
        // mismatches in total.
        if (i == len)
            return;
        if (m_id[i][k] != kInvalidState)
            nfa.addEdge(from, m_id[i][k]);
        if (k + 1 <= g.d && x_id[i][k + 1] != kInvalidState)
            nfa.addEdge(from, x_id[i][k + 1]);
    };

    for (size_t i = 1; i <= len; ++i) {
        for (int k = 0; k <= g.d; ++k) {
            if (m_id[i - 1][k] != kInvalidState)
                connect(m_id[i - 1][k], i, k);
            if (x_id[i - 1][k] != kInvalidState)
                connect(x_id[i - 1][k], i, k);
        }
    }

    for (int k = 0; k <= g.d; ++k) {
        if (m_id[len - 1][k] != kInvalidState)
            nfa.setReport(m_id[len - 1][k], spec.reportId);
        if (x_id[len - 1][k] != kInvalidState)
            nfa.setReport(x_id[len - 1][k], spec.reportId);
    }

    nfa.validate();
    return nfa;
}

Nfa
buildExactNfa(std::span<const genome::BaseMask> masks, uint32_t report_id)
{
    HammingSpec spec;
    spec.masks.assign(masks.begin(), masks.end());
    spec.maxMismatches = 0;
    spec.reportId = report_id;
    return buildHammingNfa(spec);
}

Nfa
unionNfas(std::span<const Nfa> nfas)
{
    Nfa out;
    for (const Nfa &n : nfas)
        out.merge(n);
    return out;
}

size_t
hammingNfaStates(size_t pattern_len, int max_mismatches, size_t mismatch_lo,
                 size_t mismatch_hi)
{
    Grid g{pattern_len, max_mismatches, mismatch_lo,
           std::min(mismatch_hi, pattern_len)};
    size_t n = 0;
    for (size_t i = 1; i <= pattern_len; ++i) {
        for (int k = 0; k <= g.d; ++k) {
            if (g.mExists(i, k))
                ++n;
            if (g.xExists(i, k))
                ++n;
        }
    }
    return n;
}

} // namespace crispr::automata
