/**
 * @file
 * Symbol classes over the 5-symbol genome alphabet {A,C,G,T,N}.
 *
 * The library's automata are *homogeneous* (ANML / Automata-Processor
 * style): the matching condition lives on the state, as a SymbolClass.
 * Off-target semantics baked into the class constructors:
 *  - match(m):    genome symbol matches pattern mask m; N never matches.
 *  - mismatch(m): complement of match(m) over ACGT, *plus* N — an
 *    unresolved genome base always counts as a mismatch.
 */

#ifndef CRISPR_AUTOMATA_CHARCLASS_HPP_
#define CRISPR_AUTOMATA_CHARCLASS_HPP_

#include <cstdint>
#include <string>

#include "genome/alphabet.hpp"

namespace crispr::automata {

/** Set of genome symbol codes, one bit per code (bit 4 = N). */
class SymbolClass
{
  public:
    constexpr SymbolClass() = default;
    constexpr explicit SymbolClass(uint8_t bits) : bits_(bits & 0x1f) {}

    /** Class matching exactly the bases of an IUPAC mask (never N). */
    static constexpr SymbolClass
    match(genome::BaseMask m)
    {
        return SymbolClass(m & 0xf);
    }

    /** Class matching everything a pattern position does NOT (incl. N). */
    static constexpr SymbolClass
    mismatch(genome::BaseMask m)
    {
        return SymbolClass(static_cast<uint8_t>((~m & 0xf) | 0x10));
    }

    /** Class matching every genome symbol, including N. */
    static constexpr SymbolClass any() { return SymbolClass(0x1f); }

    /** Class matching nothing. */
    static constexpr SymbolClass none() { return SymbolClass(0); }

    constexpr bool
    matches(uint8_t code) const
    {
        return ((bits_ >> code) & 1u) != 0;
    }

    constexpr uint8_t bits() const { return bits_; }
    constexpr bool empty() const { return bits_ == 0; }

    constexpr SymbolClass
    operator|(SymbolClass o) const
    {
        return SymbolClass(static_cast<uint8_t>(bits_ | o.bits_));
    }

    constexpr SymbolClass
    operator&(SymbolClass o) const
    {
        return SymbolClass(static_cast<uint8_t>(bits_ & o.bits_));
    }

    constexpr bool operator==(const SymbolClass &) const = default;

    /** Render as a bracket expression, e.g. "[ACG]" or "[CN]". */
    std::string str() const;

    /**
     * Parse a bracket expression produced by str(). Accepts single
     * letters A C G T N and "[..]" groups; '*' means any().
     */
    static SymbolClass parse(const std::string &text);

  private:
    uint8_t bits_ = 0;
};

} // namespace crispr::automata

#endif // CRISPR_AUTOMATA_CHARCLASS_HPP_
