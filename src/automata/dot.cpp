#include "automata/dot.hpp"

#include <ostream>
#include <sstream>

namespace crispr::automata {

void
writeDot(std::ostream &out, const Nfa &nfa, const std::string &name)
{
    out << "digraph \"" << name << "\" {\n";
    out << "  rankdir=LR;\n";
    out << "  node [fontname=\"monospace\"];\n";
    for (StateId s = 0; s < nfa.size(); ++s) {
        const auto &st = nfa.state(s);
        out << "  q" << s << " [label=\"q" << s << "\\n"
            << st.cls.str() << "\"";
        if (st.report)
            out << ", shape=doublecircle";
        else if (st.start != StartKind::None)
            out << ", shape=diamond";
        else
            out << ", shape=circle";
        if (st.start == StartKind::AllInput)
            out << ", style=filled, fillcolor=lightblue";
        else if (st.start == StartKind::StartOfData)
            out << ", style=filled, fillcolor=lightyellow";
        out << "];\n";
    }
    for (StateId s = 0; s < nfa.size(); ++s)
        for (StateId t : nfa.state(s).out)
            out << "  q" << s << " -> q" << t << ";\n";
    out << "}\n";
}

std::string
dotString(const Nfa &nfa, const std::string &name)
{
    std::ostringstream os;
    writeDot(os, nfa, name);
    return os.str();
}

} // namespace crispr::automata
