/**
 * @file
 * Deterministic automata: subset construction from a homogeneous NFA,
 * a dense 5-symbol transition table, and a streaming scanner. This is
 * the fast path of the HScan CPU engine (one table lookup per base).
 */

#ifndef CRISPR_AUTOMATA_DFA_HPP_
#define CRISPR_AUTOMATA_DFA_HPP_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "automata/interp.hpp"
#include "automata/nfa.hpp"
#include "common/error.hpp"
#include "genome/sequence.hpp"

namespace crispr::automata {

/**
 * A DFA over the 5-symbol genome alphabet. State 0 is the initial state
 * (the "no pattern progress" state; with start-anywhere patterns the
 * automaton never dies, it falls back toward state 0).
 */
class Dfa
{
  public:
    static constexpr int kAlphabet = genome::kNumSymbols;

    /** Number of states. */
    uint32_t size() const { return numStates_; }

    /** Transition function. */
    uint32_t
    next(uint32_t state, uint8_t symbol) const
    {
        return trans_[state * kAlphabet + symbol];
    }

    /** True iff the state reports at least one pattern. */
    bool
    accepting(uint32_t state) const
    {
        return reportBegin_[state] != reportBegin_[state + 1];
    }

    /** Report ids attached to a state (sorted, unique). */
    std::span<const uint32_t> reportsOf(uint32_t state) const;

    /**
     * Scan `input`, invoking `sink` per (report id, end index) with
     * `base_offset` added. Resumable: pass the returned state back in.
     * @return the DFA state after the last symbol.
     */
    uint32_t scan(std::span<const uint8_t> input, const ReportSink &sink,
                  uint64_t base_offset = 0, uint32_t from_state = 0) const;

    /** Collect all events of a whole-sequence scan. */
    std::vector<ReportEvent> scanAll(const genome::Sequence &seq) const;

    /** Memory footprint of the transition/report tables in bytes. */
    size_t tableBytes() const;

    /** Construct directly from tables (used by the builders below). */
    static Dfa fromTables(uint32_t num_states, std::vector<uint32_t> trans,
                          const std::vector<std::vector<uint32_t>> &reports);

    /**
     * Serialize the dense tables to a stable binary blob (versioned
     * envelope + content hash; see common/serial.hpp). decode() of the
     * blob reproduces a bit-identical automaton without re-running
     * subset construction — the ahead-of-time database fast path.
     */
    std::vector<uint8_t> encode() const;

    /**
     * Reconstruct from an encode() blob. @return InvalidArgument for a
     * foreign/version-skewed blob, ParseError for truncation, hash
     * mismatch, or internally inconsistent tables.
     */
    static common::Expected<Dfa> decode(std::span<const uint8_t> blob);

  private:
    uint32_t numStates_ = 0;
    std::vector<uint32_t> trans_;       // numStates * kAlphabet
    std::vector<uint32_t> reportBegin_; // numStates + 1 (CSR offsets)
    std::vector<uint32_t> reportIds_;   // CSR payload
};

/**
 * Determinize a homogeneous NFA by subset construction.
 * @param max_states abort threshold to bound the (worst-case
 *        exponential) blow-up.
 * @return std::nullopt if the cap was exceeded.
 */
std::optional<Dfa> subsetConstruct(const Nfa &nfa, uint32_t max_states);

} // namespace crispr::automata

#endif // CRISPR_AUTOMATA_DFA_HPP_
