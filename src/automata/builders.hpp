/**
 * @file
 * Automata constructions for off-target search. The central one is the
 * mismatch-matrix Hamming automaton (the paper's Figure-2-style design):
 * a grid of (mismatch-count x position) states where each consumed
 * pattern position either matches (stay in row k) or mismatches (drop to
 * row k+1), reporting at the last column of every row k <= d.
 */

#ifndef CRISPR_AUTOMATA_BUILDERS_HPP_
#define CRISPR_AUTOMATA_BUILDERS_HPP_

#include <span>
#include <vector>

#include "automata/nfa.hpp"
#include "genome/alphabet.hpp"

namespace crispr::automata {

/** Parameters of a Hamming pattern automaton. */
struct HammingSpec
{
    /** Pattern, one IUPAC mask per position. */
    std::vector<genome::BaseMask> masks;
    /** Maximum number of mismatches tolerated. */
    int maxMismatches = 0;
    /**
     * Half-open range [lo, hi) of pattern positions where mismatches are
     * permitted. Positions outside must match their mask exactly (used
     * to pin the PAM). Defaults to the whole pattern.
     */
    size_t mismatchLo = 0;
    size_t mismatchHi = SIZE_MAX;
    /** Report id attached to every accepting state. */
    uint32_t reportId = 0;
};

/**
 * Build the mismatch-matrix homogeneous NFA for a spec. Start-anywhere
 * semantics (all-input starts). State count is O(L * d).
 */
Nfa buildHammingNfa(const HammingSpec &spec);

/** Exact-match chain automaton (Hamming with d = 0). */
Nfa buildExactNfa(std::span<const genome::BaseMask> masks,
                  uint32_t report_id);

/**
 * Disjoint union of many automata (multi-pattern database). Report ids
 * are preserved from the inputs.
 */
Nfa unionNfas(std::span<const Nfa> nfas);

/**
 * Closed-form state count of buildHammingNfa for capacity planning
 * (must equal buildHammingNfa(spec).size(); tested).
 */
size_t hammingNfaStates(size_t pattern_len, int max_mismatches,
                        size_t mismatch_lo, size_t mismatch_hi);

} // namespace crispr::automata

#endif // CRISPR_AUTOMATA_BUILDERS_HPP_
