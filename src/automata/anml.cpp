#include "automata/anml.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"

namespace crispr::automata {

namespace {

const char *
startAttr(StartKind k)
{
    switch (k) {
      case StartKind::None:
        return "none";
      case StartKind::StartOfData:
        return "start-of-data";
      case StartKind::AllInput:
        return "all-input";
    }
    return "none";
}

StartKind
parseStart(const std::string &s)
{
    if (s == "none")
        return StartKind::None;
    if (s == "start-of-data")
        return StartKind::StartOfData;
    if (s == "all-input")
        return StartKind::AllInput;
    fatal("ANML: unknown start kind '%s'", s.c_str());
}

/** Extract attribute `name` from an XML tag body; empty if absent. */
std::string
attrOf(const std::string &tag, const std::string &name)
{
    const std::string needle = name + "=\"";
    auto at = tag.find(needle);
    if (at == std::string::npos)
        return "";
    at += needle.size();
    auto end = tag.find('"', at);
    if (end == std::string::npos)
        fatal("ANML: unterminated attribute '%s'", name.c_str());
    return tag.substr(at, end - at);
}

} // namespace

void
writeAnml(std::ostream &out, const Nfa &nfa, const std::string &network_id)
{
    out << "<anml version=\"1.0\">\n";
    out << "  <automata-network id=\"" << network_id << "\">\n";
    for (StateId s = 0; s < nfa.size(); ++s) {
        const auto &st = nfa.state(s);
        out << "    <state-transition-element id=\"q" << s
            << "\" symbol-set=\"" << st.cls.str() << "\" start=\""
            << startAttr(st.start) << "\"";
        if (st.report)
            out << " report-code=\"" << st.reportId << "\"";
        if (st.out.empty()) {
            out << "/>\n";
            continue;
        }
        out << ">\n";
        for (StateId t : st.out) {
            out << "      <activate-on-match element=\"q" << t << "\"/>\n";
        }
        out << "    </state-transition-element>\n";
    }
    out << "  </automata-network>\n";
    out << "</anml>\n";
}

std::string
anmlString(const Nfa &nfa, const std::string &network_id)
{
    std::ostringstream os;
    writeAnml(os, nfa, network_id);
    return os.str();
}

Nfa
readAnml(std::istream &in)
{
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return anmlFromString(text);
}

Nfa
anmlFromString(const std::string &text)
{
    Nfa nfa;
    std::map<std::string, StateId> name_to_id;
    // Pass 1: create states in document order.
    struct Pending
    {
        StateId from;
        std::string to;
    };
    std::vector<Pending> edges;

    size_t pos = 0;
    std::string open_element; // id of the STE whose children we are in
    StateId open_id = kInvalidState;
    while (true) {
        auto lt = text.find('<', pos);
        if (lt == std::string::npos)
            break;
        auto gt = text.find('>', lt);
        if (gt == std::string::npos)
            fatal("ANML: unterminated tag");
        std::string tag = text.substr(lt + 1, gt - lt - 1);
        pos = gt + 1;
        if (tag.rfind("state-transition-element", 0) == 0) {
            std::string id = attrOf(tag, "id");
            std::string symbols = attrOf(tag, "symbol-set");
            std::string start = attrOf(tag, "start");
            std::string report = attrOf(tag, "report-code");
            if (id.empty() || symbols.empty())
                fatal("ANML: STE missing id or symbol-set");
            StateId s = nfa.addState(
                SymbolClass::parse(symbols),
                start.empty() ? StartKind::None : parseStart(start));
            if (!report.empty())
                nfa.setReport(s, static_cast<uint32_t>(
                                     std::stoul(report)));
            if (name_to_id.count(id))
                fatal("ANML: duplicate element id '%s'", id.c_str());
            name_to_id[id] = s;
            if (tag.back() != '/')
                open_id = s;
        } else if (tag.rfind("activate-on-match", 0) == 0) {
            if (open_id == kInvalidState)
                fatal("ANML: activate-on-match outside an element");
            edges.push_back({open_id, attrOf(tag, "element")});
        } else if (tag == "/state-transition-element") {
            open_id = kInvalidState;
        }
        // Other tags (<anml>, <automata-network>, closers) are skipped.
    }

    for (const auto &e : edges) {
        auto it = name_to_id.find(e.to);
        if (it == name_to_id.end())
            fatal("ANML: edge to unknown element '%s'", e.to.c_str());
        nfa.addEdge(e.from, it->second);
    }
    nfa.validate();
    return nfa;
}

} // namespace crispr::automata
