/**
 * @file
 * ANML-style XML serialisation of homogeneous automata (the Automata
 * Processor's network markup language). A pragmatic subset: one
 * <state-transition-element> per state with symbol-set, start kind,
 * report code, and <activate-on-match> children.
 */

#ifndef CRISPR_AUTOMATA_ANML_HPP_
#define CRISPR_AUTOMATA_ANML_HPP_

#include <iosfwd>
#include <string>

#include "automata/nfa.hpp"

namespace crispr::automata {

/** Serialise an automaton as ANML-style XML. */
void writeAnml(std::ostream &out, const Nfa &nfa,
               const std::string &network_id = "offtarget");

/** Serialise to a string. */
std::string anmlString(const Nfa &nfa,
                       const std::string &network_id = "offtarget");

/**
 * Parse ANML-style XML produced by writeAnml() (round-trip safe).
 * Raises FatalError on malformed input.
 */
Nfa readAnml(std::istream &in);

/** Parse from a string. */
Nfa anmlFromString(const std::string &text);

} // namespace crispr::automata

#endif // CRISPR_AUTOMATA_ANML_HPP_
