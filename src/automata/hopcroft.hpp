/**
 * @file
 * Hopcroft DFA minimisation. Initial partition distinguishes states by
 * their exact report-id sets, so minimisation preserves multi-pattern
 * report semantics, not just accept/reject.
 */

#ifndef CRISPR_AUTOMATA_HOPCROFT_HPP_
#define CRISPR_AUTOMATA_HOPCROFT_HPP_

#include "automata/dfa.hpp"

namespace crispr::automata {

/**
 * Minimise a DFA. The result is language- and report-equivalent; state 0
 * of the result corresponds to state 0 of the input.
 */
Dfa hopcroftMinimize(const Dfa &dfa);

} // namespace crispr::automata

#endif // CRISPR_AUTOMATA_HOPCROFT_HPP_
