/**
 * @file
 * Edit-distance (bulge-tolerant) pattern automata — the natural
 * extension of the paper's Hamming formulation. CRISPR terminology:
 * a "DNA bulge" is an extra genome base (insertion against the guide),
 * an "RNA bulge" a missing one (deletion). Budgets are typed: up to
 * `maxMismatches` substitutions and up to `maxBulges` indels, all
 * confined to the editable window (the PAM stays exact and rigid).
 *
 * The construction is a homogeneous Levenshtein automaton:
 *  - M/X nodes consume a pattern position by match / substitution;
 *  - I nodes consume a genome symbol without advancing the pattern
 *    (insertion), allowed strictly inside the pattern;
 *  - deletions are epsilon-compressed into "skip-then-consume" edges
 *    and into leading/trailing deletion handling at start/accept.
 *
 * `editDistanceScan` is the DP golden reference with exactly the same
 * transition rules; the two are cross-validated in the test-suite.
 */

#ifndef CRISPR_AUTOMATA_EDIT_HPP_
#define CRISPR_AUTOMATA_EDIT_HPP_

#include <vector>

#include "automata/interp.hpp"
#include "automata/nfa.hpp"
#include "genome/sequence.hpp"

namespace crispr::automata {

/** Parameters of an edit-distance pattern automaton. */
struct EditSpec
{
    /** Pattern, one IUPAC mask per position. */
    std::vector<genome::BaseMask> masks;
    /** Maximum substitutions tolerated. */
    int maxMismatches = 0;
    /** Maximum bulges (insertions + deletions) tolerated. */
    int maxBulges = 0;
    /**
     * Half-open range [lo, hi) of positions where edits (substitutions
     * and deletions; insertions at the boundaries strictly inside it)
     * are permitted. Defaults to the whole pattern.
     */
    size_t editLo = 0;
    size_t editHi = SIZE_MAX;
    /** Report id attached to every accepting state. */
    uint32_t reportId = 0;
};

/**
 * Build the homogeneous edit-distance NFA. State count is
 * O(L * (d+1) * (b+1)); with maxBulges == 0 the result accepts exactly
 * the language of buildHammingNfa (tested).
 */
Nfa buildEditNfa(const EditSpec &spec);

/**
 * Golden DP scan: emits one event per text position t where some
 * window ending at t aligns to the pattern within the typed budgets,
 * under exactly the automaton's transition rules. O(n * L * b) time.
 */
std::vector<ReportEvent>
editDistanceScan(const genome::Sequence &text, const EditSpec &spec);

/** Multi-spec convenience wrapper over editDistanceScan (normalised). */
std::vector<ReportEvent>
editDistanceScan(const genome::Sequence &text,
                 std::span<const EditSpec> specs);

} // namespace crispr::automata

#endif // CRISPR_AUTOMATA_EDIT_HPP_
