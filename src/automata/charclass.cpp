#include "automata/charclass.hpp"

#include "common/logging.hpp"

namespace crispr::automata {

std::string
SymbolClass::str() const
{
    if (bits_ == 0x1f)
        return "*";
    static constexpr char names[] = {'A', 'C', 'G', 'T', 'N'};
    std::string inner;
    for (int b = 0; b < 5; ++b)
        if ((bits_ >> b) & 1u)
            inner.push_back(names[b]);
    if (inner.size() == 1)
        return inner;
    return "[" + inner + "]";
}

SymbolClass
SymbolClass::parse(const std::string &text)
{
    if (text == "*")
        return any();
    std::string inner = text;
    if (!inner.empty() && inner.front() == '[') {
        if (inner.back() != ']')
            fatal("unterminated symbol class '%s'", text.c_str());
        inner = inner.substr(1, inner.size() - 2);
    }
    uint8_t bits = 0;
    for (char c : inner) {
        switch (c) {
          case 'A': case 'a': bits |= 1u << 0; break;
          case 'C': case 'c': bits |= 1u << 1; break;
          case 'G': case 'g': bits |= 1u << 2; break;
          case 'T': case 't': bits |= 1u << 3; break;
          case 'N': case 'n': bits |= 1u << 4; break;
          default:
            fatal("invalid symbol-class character '%c' in '%s'", c,
                  text.c_str());
        }
    }
    return SymbolClass(bits);
}

} // namespace crispr::automata
