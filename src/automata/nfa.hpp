/**
 * @file
 * Homogeneous nondeterministic finite automata (the ANML / Automata
 * Processor model). Every state carries a SymbolClass; a state becomes
 * active after consuming symbol c at step t iff
 *
 *     c is in the state's class  AND
 *     (some predecessor was active at step t-1, or the state is an
 *      all-input start, or it is a start-of-data start and t == 0).
 *
 * This is the representation all four platform engines consume.
 */

#ifndef CRISPR_AUTOMATA_NFA_HPP_
#define CRISPR_AUTOMATA_NFA_HPP_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "automata/charclass.hpp"
#include "common/error.hpp"

namespace crispr::automata {

/** Dense state identifier within one Nfa. */
using StateId = uint32_t;

inline constexpr StateId kInvalidState = 0xffffffffu;

/** How a state can self-activate (independent of predecessors). */
enum class StartKind : uint8_t
{
    None,        //!< only predecessor activation
    StartOfData, //!< active enable at t == 0 only
    AllInput,    //!< active enable at every step (start-anywhere)
};

/** A homogeneous NFA. */
class Nfa
{
  public:
    /** One homogeneous state. */
    struct State
    {
        SymbolClass cls;
        StartKind start = StartKind::None;
        bool report = false;
        uint32_t reportId = 0;
        std::vector<StateId> out; //!< successor states
    };

    Nfa() = default;

    /** Add a state; returns its id. */
    StateId addState(SymbolClass cls, StartKind start = StartKind::None);

    /** Mark a state as reporting with the given report id. */
    void setReport(StateId s, uint32_t report_id);

    /** Add an activation edge from `from` to `to`. */
    void addEdge(StateId from, StateId to);

    size_t size() const { return states_.size(); }
    bool empty() const { return states_.empty(); }

    const State &state(StateId s) const { return states_[s]; }
    State &state(StateId s) { return states_[s]; }

    const std::vector<State> &states() const { return states_; }

    /** Ids of all start states (either kind). */
    std::vector<StateId> startStates() const;

    /** Ids of all reporting states. */
    std::vector<StateId> reportStates() const;

    /** Total number of activation edges. */
    size_t edgeCount() const;

    /** Largest out-degree over all states (spatial-fabric fan-out). */
    size_t maxFanOut() const;

    /** Largest in-degree over all states (spatial-fabric fan-in). */
    size_t maxFanIn() const;

    /** Highest report id present, or -1 if no report states. */
    int64_t maxReportId() const;

    /**
     * Append a disjoint copy of `other`; state ids of the copy are the
     * originals shifted by the previous size(). Report ids are kept.
     * @return the id offset applied to `other`'s states.
     */
    StateId merge(const Nfa &other);

    /**
     * Remove states that cannot be reached from any start state or
     * cannot reach any report state. Report ids are preserved.
     */
    void trim();

    /** Validate internal consistency; raises PanicError on corruption. */
    void validate() const;

    /**
     * Serialize to a stable binary blob (versioned envelope + content
     * hash; see common/serial.hpp). States, edges, start kinds, and
     * report ids round-trip bit-identically through decode().
     */
    std::vector<uint8_t> encode() const;

    /**
     * Reconstruct from an encode() blob. @return InvalidArgument for a
     * foreign/version-skewed blob, ParseError for truncation, hash
     * mismatch, or inconsistent state/edge data.
     */
    static common::Expected<Nfa> decode(std::span<const uint8_t> blob);

  private:
    std::vector<State> states_;
};

/** Size/shape statistics for capacity models and the E1 experiment. */
struct NfaStats
{
    size_t states = 0;
    size_t edges = 0;
    size_t startStates = 0;
    size_t reportStates = 0;
    size_t maxFanOut = 0;
    size_t maxFanIn = 0;
};

/** Compute statistics of an automaton. */
NfaStats computeStats(const Nfa &nfa);

} // namespace crispr::automata

#endif // CRISPR_AUTOMATA_NFA_HPP_
