/**
 * @file
 * Reference interpreter for homogeneous NFAs: a bit-vector frontier
 * updated per input symbol. This is the semantic ground truth every
 * platform engine is validated against, and the functional core the
 * FPGA fabric simulator reuses.
 */

#ifndef CRISPR_AUTOMATA_INTERP_HPP_
#define CRISPR_AUTOMATA_INTERP_HPP_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "automata/nfa.hpp"
#include "genome/sequence.hpp"

namespace crispr::automata {

/** A report event: pattern `reportId` matched ending at `end` (the index
 *  of the last consumed symbol). */
struct ReportEvent
{
    uint32_t reportId;
    uint64_t end;

    auto operator<=>(const ReportEvent &) const = default;
};

/** Callback invoked once per (reporting state firing, symbol index). */
using ReportSink = std::function<void(uint32_t report_id, uint64_t end)>;

/**
 * Sort events by (end, reportId) and drop duplicates, in place. Engines
 * may legitimately emit one event per accepting state; the normalised
 * form (at most one event per (pattern, end)) is what gets compared.
 */
void normalizeEvents(std::vector<ReportEvent> &events);

/**
 * Streaming NFA interpreter. Holds the activation frontier between
 * scan() calls so an input can be fed in chunks.
 */
class NfaInterpreter
{
  public:
    explicit NfaInterpreter(const Nfa &nfa);

    /** Reset to the before-any-input state. */
    void reset();

    /**
     * Consume `input` (genome codes), invoking `sink` for every report.
     * `base_offset` is added to local symbol indices in the events.
     */
    void scan(std::span<const uint8_t> input, const ReportSink &sink,
              uint64_t base_offset = 0);

    /** Convenience: scan a Sequence from offset 0, collecting events. */
    std::vector<ReportEvent> scanAll(const genome::Sequence &seq);

    /** Number of states currently active (diagnostics). */
    size_t activeCount() const;

    /**
     * Total state activations accumulated over all scans since the last
     * reset (the work metric spatial platforms execute for free).
     */
    uint64_t activationCount() const { return activations_; }

  private:
    const Nfa &nfa_;
    size_t words_;
    bool atStart_;
    uint64_t activations_ = 0;
    std::vector<uint64_t> current_;  // active after last symbol
    std::vector<uint64_t> enabled_;  // scratch: enabled for next symbol
    // Precomputed per-symbol state masks: bit s set iff symbol in cls(s).
    std::vector<std::vector<uint64_t>> classMask_;
    std::vector<uint64_t> allInputMask_;
    std::vector<uint64_t> startOfDataMask_;
    std::vector<uint64_t> reportMask_;
};

} // namespace crispr::automata

#endif // CRISPR_AUTOMATA_INTERP_HPP_
