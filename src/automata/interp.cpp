#include "automata/interp.hpp"

#include <algorithm>
#include <bit>

#include "common/logging.hpp"

namespace crispr::automata {

void
normalizeEvents(std::vector<ReportEvent> &events)
{
    std::sort(events.begin(), events.end(),
              [](const ReportEvent &a, const ReportEvent &b) {
                  return a.end != b.end ? a.end < b.end
                                        : a.reportId < b.reportId;
              });
    events.erase(std::unique(events.begin(), events.end()), events.end());
}

namespace {

inline void
setBit(std::vector<uint64_t> &v, size_t i)
{
    v[i >> 6] |= 1ULL << (i & 63);
}

} // namespace

NfaInterpreter::NfaInterpreter(const Nfa &nfa)
    : nfa_(nfa), words_((nfa.size() + 63) / 64), atStart_(true)
{
    current_.assign(words_, 0);
    enabled_.assign(words_, 0);
    classMask_.assign(genome::kNumSymbols, std::vector<uint64_t>(words_, 0));
    allInputMask_.assign(words_, 0);
    startOfDataMask_.assign(words_, 0);
    reportMask_.assign(words_, 0);

    for (StateId s = 0; s < nfa.size(); ++s) {
        const auto &st = nfa.state(s);
        for (uint8_t c = 0; c < genome::kNumSymbols; ++c)
            if (st.cls.matches(c))
                setBit(classMask_[c], s);
        if (st.start == StartKind::AllInput)
            setBit(allInputMask_, s);
        if (st.start == StartKind::StartOfData) {
            setBit(startOfDataMask_, s);
            setBit(allInputMask_, s); // SOD implies enabled at t == 0 only;
                                      // handled by atStart_ gating below.
        }
        if (st.report)
            setBit(reportMask_, s);
    }
    // Remove SOD bits from the steady-state enable mask.
    for (size_t w = 0; w < words_; ++w)
        allInputMask_[w] &= ~startOfDataMask_[w];
}

void
NfaInterpreter::reset()
{
    std::fill(current_.begin(), current_.end(), 0);
    atStart_ = true;
    activations_ = 0;
}

void
NfaInterpreter::scan(std::span<const uint8_t> input, const ReportSink &sink,
                     uint64_t base_offset)
{
    for (size_t t = 0; t < input.size(); ++t) {
        const uint8_t c = input[t];
        CRISPR_ASSERT(c < genome::kNumSymbols);

        // Enabled set: successors of active states plus start states.
        std::fill(enabled_.begin(), enabled_.end(), 0);
        for (size_t w = 0; w < words_; ++w) {
            uint64_t bits = current_[w];
            while (bits) {
                const int b = std::countr_zero(bits);
                bits &= bits - 1;
                const StateId s = static_cast<StateId>(w * 64 + b);
                for (StateId succ : nfa_.state(s).out)
                    setBit(enabled_, succ);
            }
        }
        for (size_t w = 0; w < words_; ++w) {
            enabled_[w] |= allInputMask_[w];
            if (atStart_)
                enabled_[w] |= startOfDataMask_[w];
        }
        atStart_ = false;

        // Activate: enabled AND symbol-class match.
        const auto &cmask = classMask_[c];
        bool any_report = false;
        for (size_t w = 0; w < words_; ++w) {
            const uint64_t act = enabled_[w] & cmask[w];
            current_[w] = act;
            activations_ += static_cast<uint64_t>(std::popcount(act));
            if (act & reportMask_[w])
                any_report = true;
        }

        if (any_report && sink) {
            for (size_t w = 0; w < words_; ++w) {
                uint64_t bits = current_[w] & reportMask_[w];
                while (bits) {
                    const int b = std::countr_zero(bits);
                    bits &= bits - 1;
                    const StateId s = static_cast<StateId>(w * 64 + b);
                    sink(nfa_.state(s).reportId, base_offset + t);
                }
            }
        }
    }
}

std::vector<ReportEvent>
NfaInterpreter::scanAll(const genome::Sequence &seq)
{
    reset();
    std::vector<ReportEvent> events;
    scan(seq.codes(), [&](uint32_t id, uint64_t end) {
        events.push_back(ReportEvent{id, end});
    });
    return events;
}

size_t
NfaInterpreter::activeCount() const
{
    size_t n = 0;
    for (uint64_t w : current_)
        n += static_cast<size_t>(std::popcount(w));
    return n;
}

} // namespace crispr::automata
