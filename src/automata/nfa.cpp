#include "automata/nfa.hpp"

#include <algorithm>
#include <deque>

#include "common/logging.hpp"
#include "common/serial.hpp"

namespace crispr::automata {

namespace {

constexpr uint32_t kNfaFormatVersion = 1;

} // namespace

std::vector<uint8_t>
Nfa::encode() const
{
    common::BlobWriter w;
    w.u32(static_cast<uint32_t>(states_.size()));
    for (const State &s : states_) {
        w.u8(s.cls.bits());
        w.u8(static_cast<uint8_t>(s.start));
        w.u8(s.report ? 1 : 0);
        w.u32(s.reportId);
        w.u32(static_cast<uint32_t>(s.out.size()));
        for (StateId t : s.out)
            w.u32(t);
    }
    return common::sealBlob("nfa", kNfaFormatVersion, w.buffer());
}

common::Expected<Nfa>
Nfa::decode(std::span<const uint8_t> blob)
{
    auto payload = common::openBlob("nfa", kNfaFormatVersion, blob);
    if (!payload.ok())
        return payload.error();
    common::BlobReader r(payload.value());

    const uint32_t count = r.u32();
    // Each state needs at least its 11-byte fixed record.
    if (r.ok() && static_cast<uint64_t>(count) * 11 > r.remaining())
        r.fail(strprintf("nfa blob state count %u is implausible",
                         count));
    if (auto st = r.status(); !st.ok())
        return st.error();

    Nfa nfa;
    nfa.states_.reserve(count);
    for (uint32_t i = 0; r.ok() && i < count; ++i) {
        State s;
        s.cls = SymbolClass(r.u8());
        const uint8_t start = r.u8();
        if (start > static_cast<uint8_t>(StartKind::AllInput)) {
            r.fail(strprintf("nfa blob state %u has invalid start "
                             "kind %u",
                             i, start));
            break;
        }
        s.start = static_cast<StartKind>(start);
        s.report = r.u8() != 0;
        s.reportId = r.u32();
        const uint32_t degree = r.u32();
        if (r.ok() && static_cast<uint64_t>(degree) * 4 > r.remaining()) {
            r.fail(strprintf("nfa blob state %u out-degree %u is "
                             "implausible",
                             i, degree));
            break;
        }
        s.out.reserve(degree);
        for (uint32_t e = 0; r.ok() && e < degree; ++e) {
            const StateId t = r.u32();
            if (t >= count) {
                r.fail(strprintf("nfa blob edge %u->%u out of %u "
                                 "states",
                                 i, t, count));
                break;
            }
            s.out.push_back(t);
        }
        nfa.states_.push_back(std::move(s));
    }
    if (auto st = r.finish(); !st.ok())
        return st.error();
    return nfa;
}

StateId
Nfa::addState(SymbolClass cls, StartKind start)
{
    State s;
    s.cls = cls;
    s.start = start;
    states_.push_back(std::move(s));
    return static_cast<StateId>(states_.size() - 1);
}

void
Nfa::setReport(StateId s, uint32_t report_id)
{
    CRISPR_ASSERT(s < states_.size());
    states_[s].report = true;
    states_[s].reportId = report_id;
}

void
Nfa::addEdge(StateId from, StateId to)
{
    CRISPR_ASSERT(from < states_.size() && to < states_.size());
    states_[from].out.push_back(to);
}

std::vector<StateId>
Nfa::startStates() const
{
    std::vector<StateId> out;
    for (StateId s = 0; s < states_.size(); ++s)
        if (states_[s].start != StartKind::None)
            out.push_back(s);
    return out;
}

std::vector<StateId>
Nfa::reportStates() const
{
    std::vector<StateId> out;
    for (StateId s = 0; s < states_.size(); ++s)
        if (states_[s].report)
            out.push_back(s);
    return out;
}

size_t
Nfa::edgeCount() const
{
    size_t n = 0;
    for (const auto &s : states_)
        n += s.out.size();
    return n;
}

size_t
Nfa::maxFanOut() const
{
    size_t n = 0;
    for (const auto &s : states_)
        n = std::max(n, s.out.size());
    return n;
}

size_t
Nfa::maxFanIn() const
{
    std::vector<size_t> in(states_.size(), 0);
    for (const auto &s : states_)
        for (StateId t : s.out)
            ++in[t];
    size_t n = 0;
    for (size_t v : in)
        n = std::max(n, v);
    return n;
}

int64_t
Nfa::maxReportId() const
{
    int64_t m = -1;
    for (const auto &s : states_)
        if (s.report)
            m = std::max(m, static_cast<int64_t>(s.reportId));
    return m;
}

StateId
Nfa::merge(const Nfa &other)
{
    const StateId offset = static_cast<StateId>(states_.size());
    states_.reserve(states_.size() + other.states_.size());
    for (const State &s : other.states_) {
        State copy = s;
        for (StateId &t : copy.out)
            t += offset;
        states_.push_back(std::move(copy));
    }
    return offset;
}

void
Nfa::trim()
{
    const size_t n = states_.size();
    std::vector<char> fwd(n, 0), bwd(n, 0);

    // Forward reachability from start states.
    std::deque<StateId> work;
    for (StateId s = 0; s < n; ++s) {
        if (states_[s].start != StartKind::None) {
            fwd[s] = 1;
            work.push_back(s);
        }
    }
    while (!work.empty()) {
        StateId s = work.front();
        work.pop_front();
        for (StateId t : states_[s].out) {
            if (!fwd[t]) {
                fwd[t] = 1;
                work.push_back(t);
            }
        }
    }

    // Backward reachability from report states.
    std::vector<std::vector<StateId>> in(n);
    for (StateId s = 0; s < n; ++s)
        for (StateId t : states_[s].out)
            in[t].push_back(s);
    for (StateId s = 0; s < n; ++s) {
        if (states_[s].report) {
            bwd[s] = 1;
            work.push_back(s);
        }
    }
    while (!work.empty()) {
        StateId s = work.front();
        work.pop_front();
        for (StateId p : in[s]) {
            if (!bwd[p]) {
                bwd[p] = 1;
                work.push_back(p);
            }
        }
    }

    std::vector<StateId> remap(n, kInvalidState);
    std::vector<State> kept;
    for (StateId s = 0; s < n; ++s) {
        if (fwd[s] && bwd[s]) {
            remap[s] = static_cast<StateId>(kept.size());
            kept.push_back(states_[s]);
        }
    }
    for (State &s : kept) {
        std::vector<StateId> out;
        for (StateId t : s.out)
            if (remap[t] != kInvalidState)
                out.push_back(remap[t]);
        s.out = std::move(out);
    }
    states_ = std::move(kept);
}

void
Nfa::validate() const
{
    for (const State &s : states_) {
        for (StateId t : s.out) {
            if (t >= states_.size())
                panic("NFA edge to out-of-range state %u", t);
        }
        if (s.report && s.cls.empty())
            panic("report state with empty symbol class can never fire");
    }
}

NfaStats
computeStats(const Nfa &nfa)
{
    NfaStats st;
    st.states = nfa.size();
    st.edges = nfa.edgeCount();
    st.startStates = nfa.startStates().size();
    st.reportStates = nfa.reportStates().size();
    st.maxFanOut = nfa.maxFanOut();
    st.maxFanIn = nfa.maxFanIn();
    return st;
}

} // namespace crispr::automata
