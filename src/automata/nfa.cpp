#include "automata/nfa.hpp"

#include <algorithm>
#include <deque>

#include "common/logging.hpp"

namespace crispr::automata {

StateId
Nfa::addState(SymbolClass cls, StartKind start)
{
    State s;
    s.cls = cls;
    s.start = start;
    states_.push_back(std::move(s));
    return static_cast<StateId>(states_.size() - 1);
}

void
Nfa::setReport(StateId s, uint32_t report_id)
{
    CRISPR_ASSERT(s < states_.size());
    states_[s].report = true;
    states_[s].reportId = report_id;
}

void
Nfa::addEdge(StateId from, StateId to)
{
    CRISPR_ASSERT(from < states_.size() && to < states_.size());
    states_[from].out.push_back(to);
}

std::vector<StateId>
Nfa::startStates() const
{
    std::vector<StateId> out;
    for (StateId s = 0; s < states_.size(); ++s)
        if (states_[s].start != StartKind::None)
            out.push_back(s);
    return out;
}

std::vector<StateId>
Nfa::reportStates() const
{
    std::vector<StateId> out;
    for (StateId s = 0; s < states_.size(); ++s)
        if (states_[s].report)
            out.push_back(s);
    return out;
}

size_t
Nfa::edgeCount() const
{
    size_t n = 0;
    for (const auto &s : states_)
        n += s.out.size();
    return n;
}

size_t
Nfa::maxFanOut() const
{
    size_t n = 0;
    for (const auto &s : states_)
        n = std::max(n, s.out.size());
    return n;
}

size_t
Nfa::maxFanIn() const
{
    std::vector<size_t> in(states_.size(), 0);
    for (const auto &s : states_)
        for (StateId t : s.out)
            ++in[t];
    size_t n = 0;
    for (size_t v : in)
        n = std::max(n, v);
    return n;
}

int64_t
Nfa::maxReportId() const
{
    int64_t m = -1;
    for (const auto &s : states_)
        if (s.report)
            m = std::max(m, static_cast<int64_t>(s.reportId));
    return m;
}

StateId
Nfa::merge(const Nfa &other)
{
    const StateId offset = static_cast<StateId>(states_.size());
    states_.reserve(states_.size() + other.states_.size());
    for (const State &s : other.states_) {
        State copy = s;
        for (StateId &t : copy.out)
            t += offset;
        states_.push_back(std::move(copy));
    }
    return offset;
}

void
Nfa::trim()
{
    const size_t n = states_.size();
    std::vector<char> fwd(n, 0), bwd(n, 0);

    // Forward reachability from start states.
    std::deque<StateId> work;
    for (StateId s = 0; s < n; ++s) {
        if (states_[s].start != StartKind::None) {
            fwd[s] = 1;
            work.push_back(s);
        }
    }
    while (!work.empty()) {
        StateId s = work.front();
        work.pop_front();
        for (StateId t : states_[s].out) {
            if (!fwd[t]) {
                fwd[t] = 1;
                work.push_back(t);
            }
        }
    }

    // Backward reachability from report states.
    std::vector<std::vector<StateId>> in(n);
    for (StateId s = 0; s < n; ++s)
        for (StateId t : states_[s].out)
            in[t].push_back(s);
    for (StateId s = 0; s < n; ++s) {
        if (states_[s].report) {
            bwd[s] = 1;
            work.push_back(s);
        }
    }
    while (!work.empty()) {
        StateId s = work.front();
        work.pop_front();
        for (StateId p : in[s]) {
            if (!bwd[p]) {
                bwd[p] = 1;
                work.push_back(p);
            }
        }
    }

    std::vector<StateId> remap(n, kInvalidState);
    std::vector<State> kept;
    for (StateId s = 0; s < n; ++s) {
        if (fwd[s] && bwd[s]) {
            remap[s] = static_cast<StateId>(kept.size());
            kept.push_back(states_[s]);
        }
    }
    for (State &s : kept) {
        std::vector<StateId> out;
        for (StateId t : s.out)
            if (remap[t] != kInvalidState)
                out.push_back(remap[t]);
        s.out = std::move(out);
    }
    states_ = std::move(kept);
}

void
Nfa::validate() const
{
    for (const State &s : states_) {
        for (StateId t : s.out) {
            if (t >= states_.size())
                panic("NFA edge to out-of-range state %u", t);
        }
        if (s.report && s.cls.empty())
            panic("report state with empty symbol class can never fire");
    }
}

NfaStats
computeStats(const Nfa &nfa)
{
    NfaStats st;
    st.states = nfa.size();
    st.edges = nfa.edgeCount();
    st.startStates = nfa.startStates().size();
    st.reportStates = nfa.reportStates().size();
    st.maxFanOut = nfa.maxFanOut();
    st.maxFanIn = nfa.maxFanIn();
    return st;
}

} // namespace crispr::automata
