file(REMOVE_RECURSE
  "libcrispr_hscan.a"
)
