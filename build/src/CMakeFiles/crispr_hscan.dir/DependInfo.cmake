
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hscan/database.cpp" "src/CMakeFiles/crispr_hscan.dir/hscan/database.cpp.o" "gcc" "src/CMakeFiles/crispr_hscan.dir/hscan/database.cpp.o.d"
  "/root/repo/src/hscan/dfa_scanner.cpp" "src/CMakeFiles/crispr_hscan.dir/hscan/dfa_scanner.cpp.o" "gcc" "src/CMakeFiles/crispr_hscan.dir/hscan/dfa_scanner.cpp.o.d"
  "/root/repo/src/hscan/multipattern.cpp" "src/CMakeFiles/crispr_hscan.dir/hscan/multipattern.cpp.o" "gcc" "src/CMakeFiles/crispr_hscan.dir/hscan/multipattern.cpp.o.d"
  "/root/repo/src/hscan/parallel.cpp" "src/CMakeFiles/crispr_hscan.dir/hscan/parallel.cpp.o" "gcc" "src/CMakeFiles/crispr_hscan.dir/hscan/parallel.cpp.o.d"
  "/root/repo/src/hscan/prefilter.cpp" "src/CMakeFiles/crispr_hscan.dir/hscan/prefilter.cpp.o" "gcc" "src/CMakeFiles/crispr_hscan.dir/hscan/prefilter.cpp.o.d"
  "/root/repo/src/hscan/shiftor.cpp" "src/CMakeFiles/crispr_hscan.dir/hscan/shiftor.cpp.o" "gcc" "src/CMakeFiles/crispr_hscan.dir/hscan/shiftor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crispr_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
