# Empty dependencies file for crispr_hscan.
# This may be replaced when dependencies are built.
