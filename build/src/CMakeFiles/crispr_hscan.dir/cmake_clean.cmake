file(REMOVE_RECURSE
  "CMakeFiles/crispr_hscan.dir/hscan/database.cpp.o"
  "CMakeFiles/crispr_hscan.dir/hscan/database.cpp.o.d"
  "CMakeFiles/crispr_hscan.dir/hscan/dfa_scanner.cpp.o"
  "CMakeFiles/crispr_hscan.dir/hscan/dfa_scanner.cpp.o.d"
  "CMakeFiles/crispr_hscan.dir/hscan/multipattern.cpp.o"
  "CMakeFiles/crispr_hscan.dir/hscan/multipattern.cpp.o.d"
  "CMakeFiles/crispr_hscan.dir/hscan/parallel.cpp.o"
  "CMakeFiles/crispr_hscan.dir/hscan/parallel.cpp.o.d"
  "CMakeFiles/crispr_hscan.dir/hscan/prefilter.cpp.o"
  "CMakeFiles/crispr_hscan.dir/hscan/prefilter.cpp.o.d"
  "CMakeFiles/crispr_hscan.dir/hscan/shiftor.cpp.o"
  "CMakeFiles/crispr_hscan.dir/hscan/shiftor.cpp.o.d"
  "libcrispr_hscan.a"
  "libcrispr_hscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispr_hscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
