file(REMOVE_RECURSE
  "libcrispr_fpga.a"
)
