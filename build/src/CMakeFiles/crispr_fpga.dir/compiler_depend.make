# Empty compiler generated dependencies file for crispr_fpga.
# This may be replaced when dependencies are built.
