file(REMOVE_RECURSE
  "CMakeFiles/crispr_fpga.dir/fpga/fabric.cpp.o"
  "CMakeFiles/crispr_fpga.dir/fpga/fabric.cpp.o.d"
  "CMakeFiles/crispr_fpga.dir/fpga/report.cpp.o"
  "CMakeFiles/crispr_fpga.dir/fpga/report.cpp.o.d"
  "CMakeFiles/crispr_fpga.dir/fpga/resource.cpp.o"
  "CMakeFiles/crispr_fpga.dir/fpga/resource.cpp.o.d"
  "libcrispr_fpga.a"
  "libcrispr_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispr_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
