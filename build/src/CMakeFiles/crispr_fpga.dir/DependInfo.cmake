
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/fabric.cpp" "src/CMakeFiles/crispr_fpga.dir/fpga/fabric.cpp.o" "gcc" "src/CMakeFiles/crispr_fpga.dir/fpga/fabric.cpp.o.d"
  "/root/repo/src/fpga/report.cpp" "src/CMakeFiles/crispr_fpga.dir/fpga/report.cpp.o" "gcc" "src/CMakeFiles/crispr_fpga.dir/fpga/report.cpp.o.d"
  "/root/repo/src/fpga/resource.cpp" "src/CMakeFiles/crispr_fpga.dir/fpga/resource.cpp.o" "gcc" "src/CMakeFiles/crispr_fpga.dir/fpga/resource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crispr_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
