file(REMOVE_RECURSE
  "CMakeFiles/crispr_automata.dir/automata/anml.cpp.o"
  "CMakeFiles/crispr_automata.dir/automata/anml.cpp.o.d"
  "CMakeFiles/crispr_automata.dir/automata/builders.cpp.o"
  "CMakeFiles/crispr_automata.dir/automata/builders.cpp.o.d"
  "CMakeFiles/crispr_automata.dir/automata/charclass.cpp.o"
  "CMakeFiles/crispr_automata.dir/automata/charclass.cpp.o.d"
  "CMakeFiles/crispr_automata.dir/automata/dfa.cpp.o"
  "CMakeFiles/crispr_automata.dir/automata/dfa.cpp.o.d"
  "CMakeFiles/crispr_automata.dir/automata/dot.cpp.o"
  "CMakeFiles/crispr_automata.dir/automata/dot.cpp.o.d"
  "CMakeFiles/crispr_automata.dir/automata/edit.cpp.o"
  "CMakeFiles/crispr_automata.dir/automata/edit.cpp.o.d"
  "CMakeFiles/crispr_automata.dir/automata/hopcroft.cpp.o"
  "CMakeFiles/crispr_automata.dir/automata/hopcroft.cpp.o.d"
  "CMakeFiles/crispr_automata.dir/automata/interp.cpp.o"
  "CMakeFiles/crispr_automata.dir/automata/interp.cpp.o.d"
  "CMakeFiles/crispr_automata.dir/automata/nfa.cpp.o"
  "CMakeFiles/crispr_automata.dir/automata/nfa.cpp.o.d"
  "libcrispr_automata.a"
  "libcrispr_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispr_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
