# Empty dependencies file for crispr_automata.
# This may be replaced when dependencies are built.
