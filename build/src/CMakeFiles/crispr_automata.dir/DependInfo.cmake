
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/anml.cpp" "src/CMakeFiles/crispr_automata.dir/automata/anml.cpp.o" "gcc" "src/CMakeFiles/crispr_automata.dir/automata/anml.cpp.o.d"
  "/root/repo/src/automata/builders.cpp" "src/CMakeFiles/crispr_automata.dir/automata/builders.cpp.o" "gcc" "src/CMakeFiles/crispr_automata.dir/automata/builders.cpp.o.d"
  "/root/repo/src/automata/charclass.cpp" "src/CMakeFiles/crispr_automata.dir/automata/charclass.cpp.o" "gcc" "src/CMakeFiles/crispr_automata.dir/automata/charclass.cpp.o.d"
  "/root/repo/src/automata/dfa.cpp" "src/CMakeFiles/crispr_automata.dir/automata/dfa.cpp.o" "gcc" "src/CMakeFiles/crispr_automata.dir/automata/dfa.cpp.o.d"
  "/root/repo/src/automata/dot.cpp" "src/CMakeFiles/crispr_automata.dir/automata/dot.cpp.o" "gcc" "src/CMakeFiles/crispr_automata.dir/automata/dot.cpp.o.d"
  "/root/repo/src/automata/edit.cpp" "src/CMakeFiles/crispr_automata.dir/automata/edit.cpp.o" "gcc" "src/CMakeFiles/crispr_automata.dir/automata/edit.cpp.o.d"
  "/root/repo/src/automata/hopcroft.cpp" "src/CMakeFiles/crispr_automata.dir/automata/hopcroft.cpp.o" "gcc" "src/CMakeFiles/crispr_automata.dir/automata/hopcroft.cpp.o.d"
  "/root/repo/src/automata/interp.cpp" "src/CMakeFiles/crispr_automata.dir/automata/interp.cpp.o" "gcc" "src/CMakeFiles/crispr_automata.dir/automata/interp.cpp.o.d"
  "/root/repo/src/automata/nfa.cpp" "src/CMakeFiles/crispr_automata.dir/automata/nfa.cpp.o" "gcc" "src/CMakeFiles/crispr_automata.dir/automata/nfa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crispr_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
