file(REMOVE_RECURSE
  "libcrispr_automata.a"
)
