file(REMOVE_RECURSE
  "libcrispr_common.a"
)
