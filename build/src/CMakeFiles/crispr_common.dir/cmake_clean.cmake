file(REMOVE_RECURSE
  "CMakeFiles/crispr_common.dir/common/cli.cpp.o"
  "CMakeFiles/crispr_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/crispr_common.dir/common/logging.cpp.o"
  "CMakeFiles/crispr_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/crispr_common.dir/common/table.cpp.o"
  "CMakeFiles/crispr_common.dir/common/table.cpp.o.d"
  "libcrispr_common.a"
  "libcrispr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
