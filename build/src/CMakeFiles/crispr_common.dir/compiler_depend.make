# Empty compiler generated dependencies file for crispr_common.
# This may be replaced when dependencies are built.
