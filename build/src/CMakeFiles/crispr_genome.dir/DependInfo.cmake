
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genome/alphabet.cpp" "src/CMakeFiles/crispr_genome.dir/genome/alphabet.cpp.o" "gcc" "src/CMakeFiles/crispr_genome.dir/genome/alphabet.cpp.o.d"
  "/root/repo/src/genome/fasta.cpp" "src/CMakeFiles/crispr_genome.dir/genome/fasta.cpp.o" "gcc" "src/CMakeFiles/crispr_genome.dir/genome/fasta.cpp.o.d"
  "/root/repo/src/genome/fasta_stream.cpp" "src/CMakeFiles/crispr_genome.dir/genome/fasta_stream.cpp.o" "gcc" "src/CMakeFiles/crispr_genome.dir/genome/fasta_stream.cpp.o.d"
  "/root/repo/src/genome/generator.cpp" "src/CMakeFiles/crispr_genome.dir/genome/generator.cpp.o" "gcc" "src/CMakeFiles/crispr_genome.dir/genome/generator.cpp.o.d"
  "/root/repo/src/genome/kmer.cpp" "src/CMakeFiles/crispr_genome.dir/genome/kmer.cpp.o" "gcc" "src/CMakeFiles/crispr_genome.dir/genome/kmer.cpp.o.d"
  "/root/repo/src/genome/packed.cpp" "src/CMakeFiles/crispr_genome.dir/genome/packed.cpp.o" "gcc" "src/CMakeFiles/crispr_genome.dir/genome/packed.cpp.o.d"
  "/root/repo/src/genome/record_map.cpp" "src/CMakeFiles/crispr_genome.dir/genome/record_map.cpp.o" "gcc" "src/CMakeFiles/crispr_genome.dir/genome/record_map.cpp.o.d"
  "/root/repo/src/genome/sequence.cpp" "src/CMakeFiles/crispr_genome.dir/genome/sequence.cpp.o" "gcc" "src/CMakeFiles/crispr_genome.dir/genome/sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crispr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
