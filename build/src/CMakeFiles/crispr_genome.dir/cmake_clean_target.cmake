file(REMOVE_RECURSE
  "libcrispr_genome.a"
)
