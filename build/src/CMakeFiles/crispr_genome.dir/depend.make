# Empty dependencies file for crispr_genome.
# This may be replaced when dependencies are built.
