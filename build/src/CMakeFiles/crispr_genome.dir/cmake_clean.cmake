file(REMOVE_RECURSE
  "CMakeFiles/crispr_genome.dir/genome/alphabet.cpp.o"
  "CMakeFiles/crispr_genome.dir/genome/alphabet.cpp.o.d"
  "CMakeFiles/crispr_genome.dir/genome/fasta.cpp.o"
  "CMakeFiles/crispr_genome.dir/genome/fasta.cpp.o.d"
  "CMakeFiles/crispr_genome.dir/genome/fasta_stream.cpp.o"
  "CMakeFiles/crispr_genome.dir/genome/fasta_stream.cpp.o.d"
  "CMakeFiles/crispr_genome.dir/genome/generator.cpp.o"
  "CMakeFiles/crispr_genome.dir/genome/generator.cpp.o.d"
  "CMakeFiles/crispr_genome.dir/genome/kmer.cpp.o"
  "CMakeFiles/crispr_genome.dir/genome/kmer.cpp.o.d"
  "CMakeFiles/crispr_genome.dir/genome/packed.cpp.o"
  "CMakeFiles/crispr_genome.dir/genome/packed.cpp.o.d"
  "CMakeFiles/crispr_genome.dir/genome/record_map.cpp.o"
  "CMakeFiles/crispr_genome.dir/genome/record_map.cpp.o.d"
  "CMakeFiles/crispr_genome.dir/genome/sequence.cpp.o"
  "CMakeFiles/crispr_genome.dir/genome/sequence.cpp.o.d"
  "libcrispr_genome.a"
  "libcrispr_genome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispr_genome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
