file(REMOVE_RECURSE
  "CMakeFiles/crispr_baselines.dir/baselines/brute.cpp.o"
  "CMakeFiles/crispr_baselines.dir/baselines/brute.cpp.o.d"
  "CMakeFiles/crispr_baselines.dir/baselines/casoffinder.cpp.o"
  "CMakeFiles/crispr_baselines.dir/baselines/casoffinder.cpp.o.d"
  "CMakeFiles/crispr_baselines.dir/baselines/casot.cpp.o"
  "CMakeFiles/crispr_baselines.dir/baselines/casot.cpp.o.d"
  "libcrispr_baselines.a"
  "libcrispr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
