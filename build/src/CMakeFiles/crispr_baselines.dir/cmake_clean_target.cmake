file(REMOVE_RECURSE
  "libcrispr_baselines.a"
)
