# Empty dependencies file for crispr_baselines.
# This may be replaced when dependencies are built.
