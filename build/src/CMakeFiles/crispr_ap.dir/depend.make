# Empty dependencies file for crispr_ap.
# This may be replaced when dependencies are built.
