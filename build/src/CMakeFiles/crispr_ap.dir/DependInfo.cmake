
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ap/anml.cpp" "src/CMakeFiles/crispr_ap.dir/ap/anml.cpp.o" "gcc" "src/CMakeFiles/crispr_ap.dir/ap/anml.cpp.o.d"
  "/root/repo/src/ap/capacity.cpp" "src/CMakeFiles/crispr_ap.dir/ap/capacity.cpp.o" "gcc" "src/CMakeFiles/crispr_ap.dir/ap/capacity.cpp.o.d"
  "/root/repo/src/ap/machine.cpp" "src/CMakeFiles/crispr_ap.dir/ap/machine.cpp.o" "gcc" "src/CMakeFiles/crispr_ap.dir/ap/machine.cpp.o.d"
  "/root/repo/src/ap/scaling.cpp" "src/CMakeFiles/crispr_ap.dir/ap/scaling.cpp.o" "gcc" "src/CMakeFiles/crispr_ap.dir/ap/scaling.cpp.o.d"
  "/root/repo/src/ap/simulator.cpp" "src/CMakeFiles/crispr_ap.dir/ap/simulator.cpp.o" "gcc" "src/CMakeFiles/crispr_ap.dir/ap/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crispr_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
