file(REMOVE_RECURSE
  "libcrispr_ap.a"
)
