file(REMOVE_RECURSE
  "CMakeFiles/crispr_ap.dir/ap/anml.cpp.o"
  "CMakeFiles/crispr_ap.dir/ap/anml.cpp.o.d"
  "CMakeFiles/crispr_ap.dir/ap/capacity.cpp.o"
  "CMakeFiles/crispr_ap.dir/ap/capacity.cpp.o.d"
  "CMakeFiles/crispr_ap.dir/ap/machine.cpp.o"
  "CMakeFiles/crispr_ap.dir/ap/machine.cpp.o.d"
  "CMakeFiles/crispr_ap.dir/ap/scaling.cpp.o"
  "CMakeFiles/crispr_ap.dir/ap/scaling.cpp.o.d"
  "CMakeFiles/crispr_ap.dir/ap/simulator.cpp.o"
  "CMakeFiles/crispr_ap.dir/ap/simulator.cpp.o.d"
  "libcrispr_ap.a"
  "libcrispr_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispr_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
