file(REMOVE_RECURSE
  "CMakeFiles/crispr_gpu.dir/gpu/infant2.cpp.o"
  "CMakeFiles/crispr_gpu.dir/gpu/infant2.cpp.o.d"
  "CMakeFiles/crispr_gpu.dir/gpu/transition_graph.cpp.o"
  "CMakeFiles/crispr_gpu.dir/gpu/transition_graph.cpp.o.d"
  "libcrispr_gpu.a"
  "libcrispr_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispr_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
