# Empty dependencies file for crispr_gpu.
# This may be replaced when dependencies are built.
