file(REMOVE_RECURSE
  "libcrispr_gpu.a"
)
