
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/infant2.cpp" "src/CMakeFiles/crispr_gpu.dir/gpu/infant2.cpp.o" "gcc" "src/CMakeFiles/crispr_gpu.dir/gpu/infant2.cpp.o.d"
  "/root/repo/src/gpu/transition_graph.cpp" "src/CMakeFiles/crispr_gpu.dir/gpu/transition_graph.cpp.o" "gcc" "src/CMakeFiles/crispr_gpu.dir/gpu/transition_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crispr_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
