# Empty dependencies file for crispr_core.
# This may be replaced when dependencies are built.
