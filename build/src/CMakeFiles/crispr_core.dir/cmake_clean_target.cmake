file(REMOVE_RECURSE
  "libcrispr_core.a"
)
