file(REMOVE_RECURSE
  "CMakeFiles/crispr_core.dir/core/bulge.cpp.o"
  "CMakeFiles/crispr_core.dir/core/bulge.cpp.o.d"
  "CMakeFiles/crispr_core.dir/core/compile.cpp.o"
  "CMakeFiles/crispr_core.dir/core/compile.cpp.o.d"
  "CMakeFiles/crispr_core.dir/core/engines.cpp.o"
  "CMakeFiles/crispr_core.dir/core/engines.cpp.o.d"
  "CMakeFiles/crispr_core.dir/core/guide.cpp.o"
  "CMakeFiles/crispr_core.dir/core/guide.cpp.o.d"
  "CMakeFiles/crispr_core.dir/core/offtarget.cpp.o"
  "CMakeFiles/crispr_core.dir/core/offtarget.cpp.o.d"
  "CMakeFiles/crispr_core.dir/core/report.cpp.o"
  "CMakeFiles/crispr_core.dir/core/report.cpp.o.d"
  "CMakeFiles/crispr_core.dir/core/score.cpp.o"
  "CMakeFiles/crispr_core.dir/core/score.cpp.o.d"
  "CMakeFiles/crispr_core.dir/core/search.cpp.o"
  "CMakeFiles/crispr_core.dir/core/search.cpp.o.d"
  "libcrispr_core.a"
  "libcrispr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crispr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
