
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bulge.cpp" "src/CMakeFiles/crispr_core.dir/core/bulge.cpp.o" "gcc" "src/CMakeFiles/crispr_core.dir/core/bulge.cpp.o.d"
  "/root/repo/src/core/compile.cpp" "src/CMakeFiles/crispr_core.dir/core/compile.cpp.o" "gcc" "src/CMakeFiles/crispr_core.dir/core/compile.cpp.o.d"
  "/root/repo/src/core/engines.cpp" "src/CMakeFiles/crispr_core.dir/core/engines.cpp.o" "gcc" "src/CMakeFiles/crispr_core.dir/core/engines.cpp.o.d"
  "/root/repo/src/core/guide.cpp" "src/CMakeFiles/crispr_core.dir/core/guide.cpp.o" "gcc" "src/CMakeFiles/crispr_core.dir/core/guide.cpp.o.d"
  "/root/repo/src/core/offtarget.cpp" "src/CMakeFiles/crispr_core.dir/core/offtarget.cpp.o" "gcc" "src/CMakeFiles/crispr_core.dir/core/offtarget.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/crispr_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/crispr_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/score.cpp" "src/CMakeFiles/crispr_core.dir/core/score.cpp.o" "gcc" "src/CMakeFiles/crispr_core.dir/core/score.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/CMakeFiles/crispr_core.dir/core/search.cpp.o" "gcc" "src/CMakeFiles/crispr_core.dir/core/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crispr_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_hscan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
