file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_genome.dir/bench_e8_genome.cpp.o"
  "CMakeFiles/bench_e8_genome.dir/bench_e8_genome.cpp.o.d"
  "bench_e8_genome"
  "bench_e8_genome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_genome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
