# Empty dependencies file for bench_e8_genome.
# This may be replaced when dependencies are built.
