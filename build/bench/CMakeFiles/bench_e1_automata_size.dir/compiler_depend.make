# Empty compiler generated dependencies file for bench_e1_automata_size.
# This may be replaced when dependencies are built.
