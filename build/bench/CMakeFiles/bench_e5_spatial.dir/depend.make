# Empty dependencies file for bench_e5_spatial.
# This may be replaced when dependencies are built.
