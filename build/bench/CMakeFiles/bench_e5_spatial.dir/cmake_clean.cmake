file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_spatial.dir/bench_e5_spatial.cpp.o"
  "CMakeFiles/bench_e5_spatial.dir/bench_e5_spatial.cpp.o.d"
  "bench_e5_spatial"
  "bench_e5_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
