# Empty dependencies file for bench_e13_bulges.
# This may be replaced when dependencies are built.
