file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_bulges.dir/bench_e13_bulges.cpp.o"
  "CMakeFiles/bench_e13_bulges.dir/bench_e13_bulges.cpp.o.d"
  "bench_e13_bulges"
  "bench_e13_bulges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_bulges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
