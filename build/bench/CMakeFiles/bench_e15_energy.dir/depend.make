# Empty dependencies file for bench_e15_energy.
# This may be replaced when dependencies are built.
