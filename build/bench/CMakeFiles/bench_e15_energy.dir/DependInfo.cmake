
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e15_energy.cpp" "bench/CMakeFiles/bench_e15_energy.dir/bench_e15_energy.cpp.o" "gcc" "bench/CMakeFiles/bench_e15_energy.dir/bench_e15_energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_hscan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
