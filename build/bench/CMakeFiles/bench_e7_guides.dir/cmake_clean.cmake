file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_guides.dir/bench_e7_guides.cpp.o"
  "CMakeFiles/bench_e7_guides.dir/bench_e7_guides.cpp.o.d"
  "bench_e7_guides"
  "bench_e7_guides.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_guides.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
