# Empty dependencies file for bench_e7_guides.
# This may be replaced when dependencies are built.
