# Empty compiler generated dependencies file for bench_e2_capacity.
# This may be replaced when dependencies are built.
