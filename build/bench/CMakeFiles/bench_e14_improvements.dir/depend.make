# Empty dependencies file for bench_e14_improvements.
# This may be replaced when dependencies are built.
