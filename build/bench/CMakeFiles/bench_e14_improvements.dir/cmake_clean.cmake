file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_improvements.dir/bench_e14_improvements.cpp.o"
  "CMakeFiles/bench_e14_improvements.dir/bench_e14_improvements.cpp.o.d"
  "bench_e14_improvements"
  "bench_e14_improvements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_improvements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
