file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_gpu.dir/bench_e4_gpu.cpp.o"
  "CMakeFiles/bench_e4_gpu.dir/bench_e4_gpu.cpp.o.d"
  "bench_e4_gpu"
  "bench_e4_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
