# Empty compiler generated dependencies file for bench_e4_gpu.
# This may be replaced when dependencies are built.
