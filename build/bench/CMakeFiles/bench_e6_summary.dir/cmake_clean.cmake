file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_summary.dir/bench_e6_summary.cpp.o"
  "CMakeFiles/bench_e6_summary.dir/bench_e6_summary.cpp.o.d"
  "bench_e6_summary"
  "bench_e6_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
