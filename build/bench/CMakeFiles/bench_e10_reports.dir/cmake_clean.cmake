file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_reports.dir/bench_e10_reports.cpp.o"
  "CMakeFiles/bench_e10_reports.dir/bench_e10_reports.cpp.o.d"
  "bench_e10_reports"
  "bench_e10_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
