# Empty dependencies file for bench_e10_reports.
# This may be replaced when dependencies are built.
