
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alphabet.cpp" "tests/CMakeFiles/crispr_tests.dir/test_alphabet.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_alphabet.cpp.o.d"
  "/root/repo/tests/test_anml.cpp" "tests/CMakeFiles/crispr_tests.dir/test_anml.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_anml.cpp.o.d"
  "/root/repo/tests/test_ap_anml.cpp" "tests/CMakeFiles/crispr_tests.dir/test_ap_anml.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_ap_anml.cpp.o.d"
  "/root/repo/tests/test_ap_capacity.cpp" "tests/CMakeFiles/crispr_tests.dir/test_ap_capacity.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_ap_capacity.cpp.o.d"
  "/root/repo/tests/test_ap_machine.cpp" "tests/CMakeFiles/crispr_tests.dir/test_ap_machine.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_ap_machine.cpp.o.d"
  "/root/repo/tests/test_ap_sim.cpp" "tests/CMakeFiles/crispr_tests.dir/test_ap_sim.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_ap_sim.cpp.o.d"
  "/root/repo/tests/test_brute.cpp" "tests/CMakeFiles/crispr_tests.dir/test_brute.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_brute.cpp.o.d"
  "/root/repo/tests/test_builders.cpp" "tests/CMakeFiles/crispr_tests.dir/test_builders.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_builders.cpp.o.d"
  "/root/repo/tests/test_casoffinder.cpp" "tests/CMakeFiles/crispr_tests.dir/test_casoffinder.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_casoffinder.cpp.o.d"
  "/root/repo/tests/test_casot.cpp" "tests/CMakeFiles/crispr_tests.dir/test_casot.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_casot.cpp.o.d"
  "/root/repo/tests/test_charclass.cpp" "tests/CMakeFiles/crispr_tests.dir/test_charclass.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_charclass.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/crispr_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_compile.cpp" "tests/CMakeFiles/crispr_tests.dir/test_compile.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_compile.cpp.o.d"
  "/root/repo/tests/test_dfa.cpp" "tests/CMakeFiles/crispr_tests.dir/test_dfa.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_dfa.cpp.o.d"
  "/root/repo/tests/test_edit.cpp" "tests/CMakeFiles/crispr_tests.dir/test_edit.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_edit.cpp.o.d"
  "/root/repo/tests/test_endtoend.cpp" "tests/CMakeFiles/crispr_tests.dir/test_endtoend.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_endtoend.cpp.o.d"
  "/root/repo/tests/test_fasta.cpp" "tests/CMakeFiles/crispr_tests.dir/test_fasta.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_fasta.cpp.o.d"
  "/root/repo/tests/test_fasta_stream.cpp" "tests/CMakeFiles/crispr_tests.dir/test_fasta_stream.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_fasta_stream.cpp.o.d"
  "/root/repo/tests/test_fpga.cpp" "tests/CMakeFiles/crispr_tests.dir/test_fpga.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_fpga.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/crispr_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/crispr_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_gpu.cpp" "tests/CMakeFiles/crispr_tests.dir/test_gpu.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_gpu.cpp.o.d"
  "/root/repo/tests/test_guide.cpp" "tests/CMakeFiles/crispr_tests.dir/test_guide.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_guide.cpp.o.d"
  "/root/repo/tests/test_hopcroft.cpp" "tests/CMakeFiles/crispr_tests.dir/test_hopcroft.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_hopcroft.cpp.o.d"
  "/root/repo/tests/test_hscan.cpp" "tests/CMakeFiles/crispr_tests.dir/test_hscan.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_hscan.cpp.o.d"
  "/root/repo/tests/test_interp.cpp" "tests/CMakeFiles/crispr_tests.dir/test_interp.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_interp.cpp.o.d"
  "/root/repo/tests/test_kmer.cpp" "tests/CMakeFiles/crispr_tests.dir/test_kmer.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_kmer.cpp.o.d"
  "/root/repo/tests/test_nfa.cpp" "tests/CMakeFiles/crispr_tests.dir/test_nfa.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_nfa.cpp.o.d"
  "/root/repo/tests/test_offtarget.cpp" "tests/CMakeFiles/crispr_tests.dir/test_offtarget.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_offtarget.cpp.o.d"
  "/root/repo/tests/test_packed.cpp" "tests/CMakeFiles/crispr_tests.dir/test_packed.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_packed.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/crispr_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/crispr_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_record_map.cpp" "tests/CMakeFiles/crispr_tests.dir/test_record_map.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_record_map.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/crispr_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_report_traffic.cpp" "tests/CMakeFiles/crispr_tests.dir/test_report_traffic.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_report_traffic.cpp.o.d"
  "/root/repo/tests/test_scaling.cpp" "tests/CMakeFiles/crispr_tests.dir/test_scaling.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_scaling.cpp.o.d"
  "/root/repo/tests/test_score.cpp" "tests/CMakeFiles/crispr_tests.dir/test_score.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_score.cpp.o.d"
  "/root/repo/tests/test_search.cpp" "tests/CMakeFiles/crispr_tests.dir/test_search.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_search.cpp.o.d"
  "/root/repo/tests/test_sequence.cpp" "tests/CMakeFiles/crispr_tests.dir/test_sequence.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_sequence.cpp.o.d"
  "/root/repo/tests/test_shiftor.cpp" "tests/CMakeFiles/crispr_tests.dir/test_shiftor.cpp.o" "gcc" "tests/CMakeFiles/crispr_tests.dir/test_shiftor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crispr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_hscan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crispr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
