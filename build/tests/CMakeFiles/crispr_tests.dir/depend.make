# Empty dependencies file for crispr_tests.
# This may be replaced when dependencies are built.
