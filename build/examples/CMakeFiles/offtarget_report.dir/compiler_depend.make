# Empty compiler generated dependencies file for offtarget_report.
# This may be replaced when dependencies are built.
