file(REMOVE_RECURSE
  "CMakeFiles/offtarget_report.dir/offtarget_report.cpp.o"
  "CMakeFiles/offtarget_report.dir/offtarget_report.cpp.o.d"
  "offtarget_report"
  "offtarget_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offtarget_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
