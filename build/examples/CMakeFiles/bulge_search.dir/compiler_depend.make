# Empty compiler generated dependencies file for bulge_search.
# This may be replaced when dependencies are built.
