# Empty dependencies file for automata_zoo.
# This may be replaced when dependencies are built.
