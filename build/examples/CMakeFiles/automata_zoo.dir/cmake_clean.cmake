file(REMOVE_RECURSE
  "CMakeFiles/automata_zoo.dir/automata_zoo.cpp.o"
  "CMakeFiles/automata_zoo.dir/automata_zoo.cpp.o.d"
  "automata_zoo"
  "automata_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
